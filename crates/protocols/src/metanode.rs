//! Theorem B.14: removing statefulness with metanodes.
//!
//! Every stateful protocol `A` on `K_n` (reactions may read their own
//! label) lifts to a *stateless* protocol `Ā` on `K_{3n}` with the same
//! stabilization behavior: each node is tripled, and a copy recovers "its
//! own" label by majority over its two siblings — statelessness is
//! restored because a node never needs to see itself, only its two
//! mirrors.
//!
//! The lifted reaction is exactly the paper's:
//!
//! * if the node's *view* is inconsistent (some other metanode's three
//!   copies disagree, or its own two siblings disagree or show `ω`) → `ω`;
//! * else if the corresponding labeling is a stable labeling of `A` → `ω`
//!   (the all-`ω` labeling is the lifted protocol's unique resting point);
//! * else → `δᵢ` applied to the corresponding labeling.
//!
//! Chained after [`crate::string_oscillation`], this yields Theorem 4.2:
//! deciding label r-stabilization of *stateless* protocols is
//! PSPACE-complete.

use std::sync::Arc;

use stateless_core::label::Label;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

use crate::stateful::StatefulProtocol;

/// A lifted label: an original label or the sentinel `ω`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MetaLabel<L> {
    /// An original-protocol label.
    Value(L),
    /// The paper's `ω` sentinel.
    Omega,
}

/// Lifts a stateful protocol on `K_n` to a stateless one on `K_{3n}`
/// (Theorem B.14). Copy `j` of metanode `i` is node `3i + j`.
///
/// `label_bits` declares `log₂|Σ|` of the original protocol; the lifted
/// protocol uses one extra symbol (`ω`).
pub fn metanode_lift<L: Label>(
    stateful: &StatefulProtocol<L>,
    label_bits: f64,
) -> Protocol<MetaLabel<L>> {
    let n = stateful.node_count();
    let big = 3 * n;
    let deg = big - 1;
    let stateful = Arc::new(stateful.clone());
    let mut builder = Protocol::builder(topology::clique(big), label_bits + 1.0)
        .name(format!("metanode-lift(K{n} → K{big})"));
    for node in 0..big {
        let stateful = Arc::clone(&stateful);
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![MetaLabel::Omega; deg],
                move |me: NodeId, incoming: &[MetaLabel<L>], _, outgoing: &mut [MetaLabel<L>]| {
                    let peer = |who: NodeId| -> &MetaLabel<L> {
                        &incoming[if who < me { who } else { who - 1 }]
                    };
                    let my_meta = me / 3;
                    // Reconstruct the corresponding labeling, checking the view.
                    let mut corresponding: Vec<L> = Vec::with_capacity(stateful.node_count());
                    let mut consistent = true;
                    'outer: for meta in 0..stateful.node_count() {
                        let copies: Vec<&MetaLabel<L>> = (0..3)
                            .map(|c| 3 * meta + c)
                            .filter(|&u| u != me)
                            .map(peer)
                            .collect();
                        // Other metanodes expose 3 copies, our own exposes 2;
                        // all visible copies must agree on a non-ω value.
                        let first = copies[0];
                        for c in &copies {
                            if *c != first {
                                consistent = false;
                                break 'outer;
                            }
                        }
                        match first {
                            MetaLabel::Value(v) => corresponding.push(v.clone()),
                            MetaLabel::Omega => {
                                consistent = false;
                                break 'outer;
                            }
                        }
                    }
                    // ω on an inconsistent view, and ω on a stable
                    // corresponding labeling (the all-ω labeling is the lifted
                    // protocol's unique resting point).
                    let out = if !consistent || stateful.is_stable(&corresponding) {
                        MetaLabel::Omega
                    } else {
                        MetaLabel::Value(stateful.apply(my_meta, &corresponding))
                    };
                    let y = u64::from(matches!(out, MetaLabel::Omega));
                    outgoing.fill(out);
                    y
                },
            ),
        );
    }
    builder.build().expect("all clique nodes have reactions")
}

/// Lifts a stateful label vector to an initial labeling of the metanode
/// protocol (every copy of metanode `i` broadcasts `labels[i]`).
pub fn lifted_labeling<L: Label>(labels: &[L]) -> Vec<MetaLabel<L>> {
    let n = labels.len();
    let big = 3 * n;
    let graph = topology::clique(big);
    let mut labeling = vec![MetaLabel::Omega; graph.edge_count()];
    for node in 0..big {
        for &e in graph.out_edges(node) {
            labeling[e] = MetaLabel::Value(labels[node / 3].clone());
        }
    }
    labeling
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateful::StatefulProtocol;
    use crate::string_oscillation::StringOscillation;
    use stateless_core::convergence::{classify_sync, SyncOutcome};

    fn flip(n: usize) -> StatefulProtocol<bool> {
        StatefulProtocol::new(
            (0..n)
                .map(|i| {
                    Arc::new(move |labels: &[bool]| !labels[i])
                        as Arc<dyn Fn(&[bool]) -> bool + Send + Sync>
                })
                .collect(),
        )
    }

    fn sticky_or(n: usize) -> StatefulProtocol<bool> {
        StatefulProtocol::new(
            (0..n)
                .map(|i| {
                    Arc::new(move |labels: &[bool]| labels[i] || labels[(i + 1) % labels.len()])
                        as Arc<dyn Fn(&[bool]) -> bool + Send + Sync>
                })
                .collect(),
        )
    }

    #[test]
    fn lift_of_stabilizing_protocol_settles_at_all_omega() {
        let a = sticky_or(2);
        let lifted = metanode_lift(&a, 1.0);
        for init in [[false, false], [true, false], [true, true]] {
            let initial = lifted_labeling(&init);
            let outcome = classify_sync(&lifted, &[0; 6], initial, 100_000).unwrap();
            match outcome {
                SyncOutcome::LabelStable { labeling, .. } => {
                    assert!(
                        labeling.iter().all(|l| *l == MetaLabel::Omega),
                        "resting point is all-ω"
                    );
                }
                other => panic!("expected stabilization, got {other:?}"),
            }
        }
    }

    #[test]
    fn lift_of_oscillating_protocol_oscillates() {
        let a = flip(2);
        let lifted = metanode_lift(&a, 1.0);
        let initial = lifted_labeling(&[false, true]);
        let outcome = classify_sync(&lifted, &[0; 6], initial, 100_000).unwrap();
        assert!(matches!(outcome, SyncOutcome::Oscillating { .. }));
    }

    #[test]
    fn theorem_4_2_end_to_end_halting() {
        // String-Oscillation → stateful protocol → stateless metanode lift:
        // a halting instance yields a stabilizing stateless protocol.
        let inst = StringOscillation::new(2, 2, |_| None);
        let stateful = inst.to_stateful_protocol();
        let lifted = metanode_lift(&stateful, 4.0);
        let n_big = 3 * stateful.node_count();
        for t in [[0u8, 0], [1, 0], [1, 1]] {
            let initial = lifted_labeling(&inst.initial_labels(&t));
            let outcome = classify_sync(&lifted, &vec![0; n_big], initial, 100_000).unwrap();
            assert!(
                outcome.is_label_stable(),
                "halting instance must stabilize (t={t:?})"
            );
        }
    }

    #[test]
    fn theorem_4_2_end_to_end_looping() {
        let inst = StringOscillation::new(2, 2, |t| Some(1 - t[0]));
        let stateful = inst.to_stateful_protocol();
        let lifted = metanode_lift(&stateful, 4.0);
        let n_big = 3 * stateful.node_count();
        let initial = lifted_labeling(&inst.initial_labels(&[0, 0]));
        let outcome = classify_sync(&lifted, &vec![0; n_big], initial, 100_000).unwrap();
        assert!(
            matches!(outcome, SyncOutcome::Oscillating { .. }),
            "looping instance must not stabilize"
        );
    }

    #[test]
    fn corrupted_lift_collapses_to_omega() {
        // Start from an inconsistent labeling: one copy disagrees. The
        // protocol detects the inconsistency and sinks to all-ω.
        let a = flip(2);
        let lifted = metanode_lift(&a, 1.0);
        let mut initial = lifted_labeling(&[false, false]);
        // Corrupt node 0's broadcasts.
        let graph = lifted.graph();
        for &e in graph.out_edges(0) {
            initial[e] = MetaLabel::Value(true);
        }
        let outcome = classify_sync(&lifted, &[0; 6], initial, 100_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { labeling, .. } => {
                assert!(labeling.iter().all(|l| *l == MetaLabel::Omega));
            }
            other => panic!("expected collapse to ω, got {other:?}"),
        }
    }
}
