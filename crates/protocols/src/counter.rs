//! Claims 5.5 and 5.6: the stateless 2-counter and D-counter on odd
//! bidirectional rings — the synchronization backbone of the circuit
//! compilation (Theorem 5.4).
//!
//! The construction follows the paper's architecture exactly:
//!
//! * a **2-counter** (`b1`, `b2` bit fields): nodes 0 and 1 form a period-4
//!   oscillator in `b1`; the middle nodes echo it around the ring; the last
//!   node XORs the two ends — because the ring is odd, the XOR alternates
//!   every step, and the `b2` machinery redistributes that alternating bit
//!   so every node observes a phase-locked clock bit;
//! * a **z-chain**: nodes 0 and 1 exchange-and-increment a value mod `D`,
//!   creating two interleaved arithmetic chains (offsets `α`, `β`), which
//!   the remaining nodes relay clockwise with `+1` per hop;
//! * a **gap field** `g`: node 0 sees both chains simultaneously (its two
//!   neighbors are an odd distance apart along the relay), computes the
//!   chain gap `±(α−β)`, sign-corrects it with its clock bit so it becomes
//!   *constant*, and floods it clockwise;
//! * the **derived counter**: every node normalizes its observed `z` onto
//!   one chain using `g` and its clock bit, yielding
//!   `c_j(t) = (t + φ) mod D` — the same value at every node,
//!   simultaneously.
//!
//! **Reproduction note.** The paper specifies which fields exist and the
//! overall argument but not the per-node clock-phase corrections. Those
//! corrections are *structural* (they depend on the node index, not on the
//! initial labeling), so [`CounterCore::new`] derives them once, at
//! construction time, by running a reference simulation and reading the
//! phases off the steady state — then verifies them. Self-stabilization
//! from arbitrary labelings is asserted by the tests and experiment E8.

use stateless_core::label::bits_for_cardinality;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// The counter label fields `(b1, b2, z, g)`; every node sends the same
/// fields in both directions. Label complexity `2 + 2·⌈log₂ D⌉` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CounterFields {
    /// First 2-counter bit (the period-4 oscillator / echo chain).
    pub b1: bool,
    /// Second 2-counter bit (the redistributed clock).
    pub b2: bool,
    /// The chain value mod `D`.
    pub z: u32,
    /// The flooded chain gap mod `D`.
    pub g: u32,
}

/// The reaction logic of the D-counter, reusable both as a standalone
/// protocol ([`counter_protocol`]) and as the timing substrate of the
/// circuit compiler.
#[derive(Debug, Clone)]
pub struct CounterCore {
    n: usize,
    d: u32,
    /// Calibrated per-node chain-phase bits.
    phase: Vec<bool>,
}

impl CounterCore {
    /// Builds and calibrates a D-counter core for an odd `n`-ring counting
    /// mod `d`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `n` is even or `< 3`, if
    /// `d < 2`, or if calibration fails to find consistent phases (which
    /// would indicate the construction does not synchronize at this size —
    /// never observed; the check is a safety net).
    pub fn new(n: usize, d: u32) -> Result<Self, CoreError> {
        if n < 3 || n.is_multiple_of(2) {
            return Err(CoreError::InvalidParameter {
                what: format!("the D-counter needs an odd ring of size ≥ 3, got n={n}"),
            });
        }
        if d < 2 {
            return Err(CoreError::InvalidParameter {
                what: format!("the counter modulus must be ≥ 2, got D={d}"),
            });
        }
        let mut core = CounterCore {
            n,
            d,
            phase: vec![false; n],
        };
        core.calibrate()?;
        Ok(core)
    }

    /// Ring size.
    pub fn ring_size(&self) -> usize {
        self.n
    }

    /// Counter modulus `D`.
    pub fn modulus(&self) -> u32 {
        self.d
    }

    /// The counter-field part of node `j`'s reaction: next outgoing fields
    /// given the incoming fields from the counter-clockwise and clockwise
    /// neighbors.
    pub fn react(&self, j: NodeId, ccw: CounterFields, cw: CounterFields) -> CounterFields {
        let n = self.n;
        let d = self.d;
        let (b1, b2) = if j == 0 {
            (!cw.b1, ccw.b1)
        } else if j == n - 1 {
            (cw.b1 ^ ccw.b1, ccw.b2)
        } else if (j + 1).is_multiple_of(2) {
            // Paper index j+1 even: copy b1, negate b2.
            (ccw.b1, !ccw.b2)
        } else {
            (ccw.b1, ccw.b2)
        };
        let z = if j == 0 {
            (cw.z + 1) % d
        } else {
            (ccw.z + 1) % d
        };
        let g = if j == 0 {
            // Sign-correct the chain gap with the local clock bit so the
            // flooded value is constant over time.
            if ccw.b2 {
                (cw.z % d + d - ccw.z % d) % d
            } else {
                (ccw.z % d + d - cw.z % d) % d
            }
        } else {
            ccw.g
        };
        CounterFields { b1, b2, z, g }
    }

    /// The counter value node `j` derives from its incoming fields — after
    /// stabilization, `count` returns the same value at every node and
    /// increments by 1 (mod `D`) per synchronous round.
    pub fn count(&self, j: NodeId, ccw: CounterFields, cw: CounterFields) -> u32 {
        let z_obs = if j == 0 { cw.z } else { ccw.z } % self.d;
        let indicator = ccw.b2 ^ self.phase[j];
        if indicator {
            (z_obs + ccw.g % self.d) % self.d
        } else {
            z_obs
        }
    }

    /// One synchronous step of the node-uniform label vector (used by
    /// calibration and tests).
    pub fn step_uniform(&self, state: &[CounterFields]) -> Vec<CounterFields> {
        let n = self.n;
        (0..n)
            .map(|j| self.react(j, state[(j + n - 1) % n], state[(j + 1) % n]))
            .collect()
    }

    /// Derived counts of all nodes for a node-uniform label vector.
    pub fn counts_uniform(&self, state: &[CounterFields]) -> Vec<u32> {
        let n = self.n;
        (0..n)
            .map(|j| self.count(j, state[(j + n - 1) % n], state[(j + 1) % n]))
            .collect()
    }

    fn calibrate(&mut self) -> Result<(), CoreError> {
        let n = self.n;
        let d = self.d;
        // A generic reference start with chain gap 1: the gap must NOT be
        // self-complementary mod D (like D/2), or the sign of the
        // correction would be unobservable and the phases ambiguous.
        let mut state: Vec<CounterFields> = (0..n)
            .map(|j| CounterFields {
                b1: false,
                b2: false,
                z: u32::from(j == 1),
                g: 0,
            })
            .collect();
        // Settle: b-machinery ≤ 2n, z-chains ≤ n, g-flood ≤ n rounds.
        for _ in 0..4 * n + 8 {
            state = self.step_uniform(&state);
        }
        // Record a window of consecutive states.
        let window = 2 * d as usize + 4;
        let mut states = Vec::with_capacity(window);
        for _ in 0..window {
            states.push(state.clone());
            state = self.step_uniform(&state);
        }
        // Phase of node j: the choice making its count increment by 1 every
        // round and agree with node 0's counter.
        for j in 0..n {
            let mut chosen = None;
            'candidates: for candidate in [false, true] {
                self.phase[j] = candidate;
                let mut counts = Vec::with_capacity(window);
                for s in &states {
                    counts.push(self.count(j, s[(j + n - 1) % n], s[(j + 1) % n]));
                }
                for w in counts.windows(2) {
                    if (w[0] + 1) % d != w[1] {
                        continue 'candidates;
                    }
                }
                if j > 0 {
                    // Must agree with the already-calibrated node 0.
                    let ref_count = self.count(0, states[0][n - 1], states[0][1]);
                    if counts[0] != ref_count {
                        continue 'candidates;
                    }
                }
                chosen = Some(candidate);
                break;
            }
            match chosen {
                Some(c) => self.phase[j] = c,
                None => {
                    return Err(CoreError::InvalidParameter {
                        what: format!("counter calibration failed at node {j} (n={n}, D={d})"),
                    })
                }
            }
        }
        Ok(())
    }
}

/// Builds the Claim 5.6 D-counter as a standalone protocol on the odd
/// bidirectional `n`-ring. Every node's *output* is its derived counter
/// value; after `O(n)` rounds all outputs are equal and increment by 1
/// (mod `D`) each round, from **any** initial labeling.
///
/// # Errors
///
/// Propagates [`CounterCore::new`] errors.
pub fn counter_protocol(n: usize, d: u32) -> Result<Protocol<CounterFields>, CoreError> {
    let core = CounterCore::new(n, d)?;
    let label_bits = 2.0 + 2.0 * bits_for_cardinality(u128::from(d));
    let mut builder = Protocol::builder(topology::bidirectional_ring(n), label_bits)
        .name(format!("d-counter(n={n}, D={d})"));
    for node in 0..n {
        let core = core.clone();
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![CounterFields::default(); 2],
                move |j: NodeId, incoming: &[CounterFields], _, out: &mut [CounterFields]| {
                    let (ccw, cw) = (incoming[0], incoming[1]);
                    out.fill(core.react(j, ccw, cw));
                    u64::from(core.count(j, ccw, cw))
                },
            ),
        );
    }
    builder.build()
}

/// Rounds after which the counter is guaranteed synchronized (the paper's
/// `Rₙ = 4n` shape, with our slack): `4n + 8`.
pub fn sync_rounds_bound(n: usize) -> u64 {
    4 * n as u64 + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stateless_core::engine::Simulation;
    use stateless_core::schedule::Synchronous;

    fn random_fields<R: rand::Rng + rand::RngExt>(rng: &mut R, d: u32) -> CounterFields {
        CounterFields {
            b1: rng.random_bool(0.5),
            b2: rng.random_bool(0.5),
            z: rng.random_range(0..4 * d),
            g: rng.random_range(0..4 * d),
        }
    }

    /// After the burn-in, all outputs must be equal and advance by 1 mod D
    /// every round.
    fn assert_synchronized(n: usize, d: u32, seed: u64) {
        let p = counter_protocol(n, d).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let initial: Vec<CounterFields> = (0..p.edge_count())
            .map(|_| random_fields(&mut rng, d))
            .collect();
        let mut sim = Simulation::new(&p, &vec![0; n], initial).unwrap();
        sim.run(&mut Synchronous, sync_rounds_bound(n));
        let mut prev: Option<u64> = None;
        for _ in 0..2 * d as u64 + 4 {
            sim.run(&mut Synchronous, 1);
            let outs = sim.outputs();
            assert!(
                outs.iter().all(|&c| c == outs[0]),
                "n={n} D={d} seed={seed}: outputs not synchronized: {outs:?}"
            );
            if let Some(p) = prev {
                assert_eq!(
                    outs[0],
                    (p + 1) % u64::from(d),
                    "n={n} D={d}: bad increment"
                );
            }
            prev = Some(outs[0]);
        }
    }

    #[test]
    fn two_counter_alternates_on_small_rings() {
        // Claim 5.5: the observed b2 bit alternates at every node.
        for n in [3usize, 5, 7] {
            let core = CounterCore::new(n, 2).unwrap();
            let mut state: Vec<CounterFields> = vec![CounterFields::default(); n];
            for _ in 0..4 * n + 8 {
                state = core.step_uniform(&state);
            }
            let mut prev: Option<Vec<bool>> = None;
            for _ in 0..8 {
                let obs: Vec<bool> = (0..n).map(|j| state[(j + n - 1) % n].b2).collect();
                if let Some(p) = prev {
                    for j in 0..n {
                        assert_ne!(p[j], obs[j], "n={n}: node {j}'s clock bit must alternate");
                    }
                }
                prev = Some(obs);
                state = core.step_uniform(&state);
            }
        }
    }

    #[test]
    fn counter_synchronizes_from_random_labelings() {
        for n in [3usize, 5, 7, 9] {
            for d in [2u32, 3, 5, 8] {
                for seed in 0..3 {
                    assert_synchronized(n, d, seed);
                }
            }
        }
    }

    #[test]
    fn counter_synchronizes_on_larger_ring() {
        assert_synchronized(15, 16, 1);
    }

    #[test]
    fn rejects_even_rings_and_trivial_modulus() {
        assert!(CounterCore::new(4, 4).is_err());
        assert!(CounterCore::new(2, 4).is_err());
        assert!(CounterCore::new(5, 1).is_err());
    }

    #[test]
    fn label_complexity_matches_claim_shape() {
        // Claim 5.6 reports Lₙ = 2 + 3·log D (it also ships the count in
        // the label); ours is 2 + 2·log D because the count is derived.
        let p = counter_protocol(5, 16).unwrap();
        assert_eq!(p.label_bits(), 2.0 + 2.0 * 4.0);
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = CounterCore::new(7, 8).unwrap();
        let b = CounterCore::new(7, 8).unwrap();
        assert_eq!(a.phase, b.phase);
    }
}
