//! Proposition 2.3: every Boolean function is computable by a
//! label-stabilizing protocol with `Lₙ = n + 1` and `Rₙ ≤ 2n` on any
//! strongly connected digraph.
//!
//! The construction uses two spanning arborescences rooted at node 0:
//! along `T₂` (paths *into* the root) every node forwards the OR-fold of
//! its subtree's inputs toward the root; node 0 assembles the full input
//! vector, evaluates `f`, and floods the answer along `T₁` (paths *out of*
//! the root). Each label is a pair `(z, b)` of an `n`-bit input-knowledge
//! vector and the answer bit.

use std::sync::Arc;

use stateless_core::graph::DiGraph;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// The `(z, b)` label of the generic protocol: `z` is a partial input
/// vector (coordinate-wise OR of everything learned so far), `b` the
/// answer bit being flooded.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GenericLabel {
    /// Partial knowledge of the global input (length `n`).
    pub z: Vec<bool>,
    /// The flooded output bit.
    pub b: bool,
}

impl GenericLabel {
    /// The all-zero label (the paper's `0^{n+1}`).
    pub fn zero(n: usize) -> Self {
        GenericLabel {
            z: vec![false; n],
            b: false,
        }
    }
}

/// Builds the Proposition 2.3 protocol computing `f` on `graph`.
///
/// The protocol is **label-stabilizing from any initial labeling**: every
/// label is recomputed from scratch at each activation, so corrupted
/// initial knowledge is flushed within one tree height in each direction
/// (`Rₙ ≤ 2n` synchronous rounds).
///
/// # Errors
///
/// Returns [`CoreError::NotStronglyConnected`] if `graph` is not strongly
/// connected (the arborescences do not exist otherwise).
pub fn generic_protocol<F>(graph: DiGraph, f: F) -> Result<Protocol<GenericLabel>, CoreError>
where
    F: Fn(&[bool]) -> bool + Send + Sync + 'static,
{
    let n = graph.node_count();
    let t1 = graph.out_arborescence(0)?; // paths root → i (flood tree)
    let t2 = graph.in_arborescence(0)?; // paths i → root (gather tree)
    let f = Arc::new(f);

    // children2[i] = incoming edges of i from its T₂ children (the nodes
    // whose gathered knowledge i aggregates).
    let mut children2: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    for (child, parent_edge) in t2.iter().enumerate() {
        if let Some(e) = *parent_edge {
            let (_, to) = graph.endpoints(e);
            children2[to].push(e);
            debug_assert_eq!(graph.endpoints(e).0, child);
        }
    }
    // children1[i] = outgoing edges of i to its T₁ children (the nodes i
    // floods the answer to). parent1_edge[i] = the incoming edge carrying
    // the answer to i.
    let mut children1: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    for parent_edge in t1.iter().flatten() {
        let (from, _) = graph.endpoints(*parent_edge);
        children1[from].push(*parent_edge);
    }

    let mut builder =
        Protocol::builder(graph.clone(), (n + 1) as f64).name(format!("generic-f(n={n})"));
    for node in 0..n {
        let in_edges: Vec<EdgeId> = graph.in_edges(node).to_vec();
        let out_edges: Vec<EdgeId> = graph.out_edges(node).to_vec();
        // Positions (within `incoming`) of this node's T₂-children edges.
        let gather_slots: Vec<usize> = children2[node]
            .iter()
            .map(|e| {
                in_edges
                    .iter()
                    .position(|x| x == e)
                    .expect("child edge is incoming")
            })
            .collect();
        // Position of the T₁ parent edge (None for the root).
        let answer_slot: Option<usize> = t1[node].map(|e| {
            in_edges
                .iter()
                .position(|x| *x == e)
                .expect("parent edge is incoming")
        });
        // For each outgoing edge: does it go to the T₂ parent, and is it a
        // T₁ child edge?
        let is_gather_out: Vec<bool> = out_edges.iter().map(|e| t2[node] == Some(*e)).collect();
        let is_flood_out: Vec<bool> = out_edges
            .iter()
            .map(|e| children1[node].contains(e))
            .collect();
        let f = Arc::clone(&f);

        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![GenericLabel::zero(n); out_edges.len()],
                move |i: NodeId,
                      incoming: &[GenericLabel],
                      input,
                      outgoing: &mut [GenericLabel]| {
                    // wᵢ ∨ OR over T₂-children's z vectors.
                    let mut z = vec![false; n];
                    z[i] = input == 1;
                    for &slot in &gather_slots {
                        for (zi, ci) in z.iter_mut().zip(&incoming[slot].z) {
                            *zi |= *ci;
                        }
                    }
                    // The answer bit: the root computes it, others read their
                    // T₁ parent's label.
                    let (b, y) = if i == 0 {
                        let bit = f(&z);
                        (bit, u64::from(bit))
                    } else {
                        let bit = answer_slot.map(|s| incoming[s].b).unwrap_or(false);
                        (bit, u64::from(bit))
                    };
                    // Rewrite the buffer labels in place: their z vectors'
                    // capacity is reused across steps (clear + resize also
                    // normalizes garbage-length z's from adversarial
                    // initial labelings).
                    for ((out, &gather), &flood) in
                        outgoing.iter_mut().zip(&is_gather_out).zip(&is_flood_out)
                    {
                        out.z.clear();
                        if gather {
                            out.z.extend_from_slice(&z);
                        } else {
                            out.z.resize(n, false);
                        }
                        out.b = flood && b;
                    }
                    y
                },
            ),
        );
    }
    builder.build()
}

/// A safe synchronous round budget for the protocol: `2n` (Proposition
/// 2.3's `Rₙ`).
pub fn round_bound(n: usize) -> u64 {
    2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use stateless_core::convergence::{classify_sync, SyncOutcome};
    use stateless_core::engine::Simulation;
    use stateless_core::schedule::{RoundRobin, Synchronous};

    fn check_on_graph<F>(graph: DiGraph, f: F)
    where
        F: Fn(&[bool]) -> bool + Send + Sync + Clone + 'static,
    {
        let n = graph.node_count();
        assert!(n <= 6);
        let p = generic_protocol(graph, f.clone()).unwrap();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
            let mut sim =
                Simulation::new(&p, &inputs, vec![GenericLabel::zero(n); p.edge_count()]).unwrap();
            let steps = sim
                .run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
                .unwrap_or_else(|e| panic!("did not stabilize on x={x:?}: {e}"));
            assert!(
                steps <= round_bound(n),
                "Rₙ ≤ 2n violated: {steps} > {}",
                round_bound(n)
            );
            // Outputs refresh at the activation *after* the labels settle.
            sim.run(&mut Synchronous, 1);
            let expected = u64::from(f(&x));
            assert_eq!(sim.outputs(), &vec![expected; n][..], "x = {x:?}");
        }
    }

    #[test]
    fn computes_parity_on_unidirectional_ring() {
        check_on_graph(topology::unidirectional_ring(5), |x: &[bool]| {
            x.iter().filter(|&&b| b).count() % 2 == 1
        });
    }

    #[test]
    fn computes_majority_on_bidirectional_ring() {
        check_on_graph(topology::bidirectional_ring(5), |x: &[bool]| {
            2 * x.iter().filter(|&&b| b).count() >= x.len()
        });
    }

    #[test]
    fn computes_equality_on_clique_and_star() {
        let eq = |x: &[bool]| x.len().is_multiple_of(2) && x[..x.len() / 2] == x[x.len() / 2..];
        check_on_graph(topology::clique(4), eq);
        check_on_graph(topology::star(6), eq);
    }

    #[test]
    fn computes_on_random_strongly_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..3 {
            let g = topology::random_strongly_connected(6, 8, &mut rng);
            check_on_graph(g, |x: &[bool]| x.iter().filter(|&&b| b).count() >= 2);
        }
    }

    #[test]
    fn self_stabilizes_from_adversarial_initial_labelings() {
        let n = 5;
        let g = topology::bidirectional_ring(n);
        let p = generic_protocol(g, |x: &[bool]| x.iter().any(|&b| b)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let x = [true, false, false, true, false];
        let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        for _ in 0..20 {
            let initial: Vec<GenericLabel> = (0..p.edge_count())
                .map(|_| GenericLabel {
                    z: (0..n).map(|_| rng.random_bool(0.5)).collect(),
                    b: rng.random_bool(0.5),
                })
                .collect();
            let mut sim = Simulation::new(&p, &inputs, initial).unwrap();
            let steps = sim
                .run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
                .unwrap();
            assert!(steps <= round_bound(n));
            sim.run(&mut Synchronous, 1);
            assert_eq!(sim.outputs(), &[1, 1, 1, 1, 1]);
        }
    }

    #[test]
    fn stabilizes_under_round_robin_too() {
        let n = 4;
        let g = topology::clique(n);
        let p = generic_protocol(g, |x: &[bool]| x.iter().all(|&b| b)).unwrap();
        let mut sim = Simulation::new(
            &p,
            &[1, 1, 1, 1],
            vec![GenericLabel::zero(n); p.edge_count()],
        )
        .unwrap();
        let mut sched = RoundRobin::new(1);
        sim.run_until_label_stable(&mut sched, 200).unwrap();
        sim.run(&mut sched, 4); // every node reacts once more to refresh outputs
        assert_eq!(sim.outputs(), &[1, 1, 1, 1]);
    }

    #[test]
    fn sync_classification_confirms_label_stability() {
        let n = 4;
        let g = topology::unidirectional_ring(n);
        let p = generic_protocol(g, |x: &[bool]| x[0]).unwrap();
        let outcome =
            classify_sync(&p, &[1, 0, 0, 0], vec![GenericLabel::zero(n); n], 100_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { round, outputs, .. } => {
                assert!(round <= round_bound(n));
                assert_eq!(outputs, vec![1; n]);
            }
            other => panic!("expected label stability, got {other:?}"),
        }
    }
}
