//! Stateful protocols on cliques (Appendix B): reaction functions that may
//! read their *own* outgoing label as well as everyone else's.
//!
//! These are the intermediate objects of the PSPACE-completeness proof
//! (Theorem 4.2): String-Oscillation reduces to stateful-protocol
//! stabilization (Theorem B.11), and [`crate::metanode`] removes the
//! statefulness (Theorem B.14). Labels are per-node (each node broadcasts
//! the same label to all clique neighbors), matching the appendix's
//! redefinition `δᵢ : Σⁿ → Σ`.

use std::collections::HashMap;
use std::sync::Arc;

use stateless_core::label::Label;

/// A stateful reaction: node `i`'s next label as a function of the whole
/// label vector (including `ℓᵢ` itself).
pub type StatefulReaction<L> = Arc<dyn Fn(&[L]) -> L + Send + Sync>;

/// A stateful clique protocol: node `i`'s next label is
/// `δᵢ(ℓ₁, …, ℓₙ)` — note the inclusion of `ℓᵢ` itself.
#[derive(Clone)]
pub struct StatefulProtocol<L> {
    reactions: Vec<StatefulReaction<L>>,
}

impl<L: Label> std::fmt::Debug for StatefulProtocol<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatefulProtocol")
            .field("nodes", &self.reactions.len())
            .finish()
    }
}

impl<L: Label> StatefulProtocol<L> {
    /// Builds a protocol from one reaction per node.
    ///
    /// # Panics
    ///
    /// Panics if `reactions` is empty.
    pub fn new(reactions: Vec<StatefulReaction<L>>) -> Self {
        assert!(!reactions.is_empty(), "need at least one node");
        StatefulProtocol { reactions }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.reactions.len()
    }

    /// Applies node `i`'s reaction to the global label vector.
    pub fn apply(&self, i: usize, labels: &[L]) -> L {
        (self.reactions[i])(labels)
    }

    /// One step activating `active` (simultaneous reads).
    pub fn step(&self, labels: &[L], active: &[usize]) -> Vec<L> {
        let mut next = labels.to_vec();
        for &i in active {
            next[i] = self.apply(i, labels);
        }
        next
    }

    /// Whether `labels` is a fixed point of every reaction.
    pub fn is_stable(&self, labels: &[L]) -> bool {
        (0..self.node_count()).all(|i| self.apply(i, labels) == labels[i])
    }

    /// Classifies the synchronous run from `initial` by cycle detection:
    /// `Ok(true)` if it reaches a stable vector, `Ok(false)` if it enters a
    /// nontrivial cycle, `Err(visited)` if `max_states` was exceeded.
    pub fn sync_stabilizes(&self, initial: Vec<L>, max_states: usize) -> Result<bool, usize> {
        let n = self.node_count();
        let all: Vec<usize> = (0..n).collect();
        let mut seen: HashMap<Vec<L>, u64> = HashMap::new();
        let mut current = initial;
        for t in 0..max_states as u64 {
            if let Some(_prev) = seen.get(&current) {
                return Ok(false);
            }
            seen.insert(current.clone(), t);
            let next = self.step(&current, &all);
            if next == current {
                return Ok(true);
            }
            current = next;
        }
        Err(max_states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip_protocol(n: usize) -> StatefulProtocol<bool> {
        // Every node negates its own label: oscillates forever.
        let reactions = (0..n)
            .map(|i| {
                Arc::new(move |labels: &[bool]| !labels[i])
                    as Arc<dyn Fn(&[bool]) -> bool + Send + Sync>
            })
            .collect();
        StatefulProtocol::new(reactions)
    }

    fn copy_protocol(n: usize) -> StatefulProtocol<bool> {
        // Every node copies its left neighbor's label OR'd with its own:
        // sticky, stabilizes.
        let reactions = (0..n)
            .map(|i| {
                Arc::new(move |labels: &[bool]| labels[i] || labels[(i + 1) % labels.len()])
                    as Arc<dyn Fn(&[bool]) -> bool + Send + Sync>
            })
            .collect();
        StatefulProtocol::new(reactions)
    }

    #[test]
    fn flip_oscillates() {
        let p = flip_protocol(3);
        assert_eq!(p.sync_stabilizes(vec![false, true, false], 100), Ok(false));
        assert!(!p.is_stable(&[false, false, false]));
    }

    #[test]
    fn sticky_or_stabilizes() {
        let p = copy_protocol(4);
        assert_eq!(
            p.sync_stabilizes(vec![false, true, false, false], 100),
            Ok(true)
        );
        assert!(p.is_stable(&[true; 4]));
        assert!(p.is_stable(&[false; 4]));
    }

    #[test]
    fn partial_activation_only_updates_active_nodes() {
        let p = flip_protocol(3);
        let next = p.step(&[false, false, false], &[1]);
        assert_eq!(next, vec![false, true, false]);
    }

    #[test]
    fn state_budget_is_reported() {
        // A counter protocol that never repeats within the budget.
        let reactions =
            vec![Arc::new(|labels: &[u64]| labels[0] + 1)
                as Arc<dyn Fn(&[u64]) -> u64 + Send + Sync>];
        let p = StatefulProtocol::new(reactions);
        assert_eq!(p.sync_stabilizes(vec![0], 50), Err(50));
    }
}
