//! Theorem 4.1 (Theorems B.4 and B.7): the snake-in-the-box clique
//! protocols showing that verifying label r-stabilization costs `2^Ω(n)`
//! bits of communication.
//!
//! All three constructions run on the clique `K_n` with 1-bit labels
//! (every node broadcasts one bit). The "bottom" nodes embed a hypercube
//! `Q_d`: their joint bits form a cube vertex, and while the "top" nodes
//! agree, the orientation function `φ` of a snake `S ⊆ Q_d` walks that
//! vertex along the snake cycle. Alice's and Bob's reaction functions hold
//! their private inputs `x, y` (indexed by snake position); the system
//! oscillates forever exactly when the communication-problem instance is
//! positive:
//!
//! * [`eq_reduction`] (Thm B.4, `r = 1`): oscillates iff `x = y`;
//! * [`eq_reduction_with_latch`] (Thm B.4, general `r ≤ 2^{n/2}`): a
//!   two-node latch slows the collapse so that only sufficiently long
//!   disagreement windows stop the walk;
//! * [`disj_reduction`] (Thm B.7, `r ≥ 2^{n/2}`): oscillates (under the
//!   scripted r-fair schedule of Claim B.8, [`disj_oscillation_schedule`])
//!   iff the input sets intersect.

use hypercube_snake::Snake;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// Node roles of the reductions: Alice is node 0, Bob node 1; in the latch
/// variant nodes 2 and 3 form the latch; the remaining `d` nodes carry the
/// cube state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionLayout {
    /// Number of clique nodes.
    pub n: usize,
    /// Index of the first cube-state node.
    pub state_base: usize,
    /// Cube dimension `d`.
    pub d: u32,
}

/// Extracts, from a clique node's `incoming` slice (all other nodes'
/// labels in ascending node order), the label of node `who` (≠ self).
fn peer(incoming: &[bool], me: NodeId, who: NodeId) -> bool {
    incoming[if who < me { who } else { who - 1 }]
}

/// Extracts the cube state from a clique node's `incoming` slice.
fn peer_state(incoming: &[bool], me: NodeId, base: usize, d: u32, own_bit: bool) -> u32 {
    let mut v = 0u32;
    for bit in 0..d {
        let node = base + bit as usize;
        let b = if node == me {
            own_bit
        } else {
            peer(incoming, me, node)
        };
        if b {
            v |= 1 << bit;
        }
    }
    v
}

/// Builds the Theorem B.4 (`r = 1`) equality reduction on `K_{d+2}`.
///
/// `x` and `y` must have length `snake.len()`. The snake must avoid
/// vertex 0; for the `x ≠ y` convergence claim to hold from every initial
/// labeling, 0's whole neighborhood must also be off the snake — use
/// [`Snake::embedded_isolated`]. (Maximum snakes *dominate* the cube, so
/// the paper's collapse-to-`0^d` argument needs this strengthening; see
/// DESIGN.md.)
///
/// The protocol oscillates under the synchronous schedule from
/// `(α, α, s₀)` iff `x = y`, and label-stabilizes to `(1, 0, 0^d)` when
/// `x ≠ y`.
///
/// # Panics
///
/// Panics if the input lengths mismatch the snake or the snake contains
/// vertex 0.
pub fn eq_reduction(snake: &Snake, x: &[bool], y: &[bool]) -> (Protocol<bool>, ReductionLayout) {
    assert_eq!(x.len(), snake.len(), "x must be indexed by snake positions");
    assert_eq!(y.len(), snake.len(), "y must be indexed by snake positions");
    assert!(
        !snake.contains(0),
        "normalize the snake away from vertex 0 first"
    );
    let d = snake.dimension();
    let n = d as usize + 2;
    let layout = ReductionLayout {
        n,
        state_base: 2,
        d,
    };
    let deg = n - 1;
    let mut builder = Protocol::builder(topology::clique(n), 1.0)
        .name(format!("eq-reduction(d={d}, |S|={})", snake.len()));
    // Alice.
    {
        let snake = snake.clone();
        let x = x.to_vec();
        builder = builder.reaction(
            0,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let state = peer_state(incoming, me, 2, d, false);
                    let bit = match snake.position(state) {
                        Some(i) => x[i],
                        None => true,
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    // Bob.
    {
        let snake = snake.clone();
        let y = y.to_vec();
        builder = builder.reaction(
            1,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let state = peer_state(incoming, me, 2, d, false);
                    let bit = match snake.position(state) {
                        Some(i) => y[i],
                        None => false,
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    // Cube-state nodes.
    for node in 2..n {
        let snake = snake.clone();
        let dim = (node - 2) as u32;
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let alice = peer(incoming, me, 0);
                    let bob = peer(incoming, me, 1);
                    let bit = if alice != bob {
                        false
                    } else {
                        let rest = peer_state(incoming, me, 2, d, false);
                        snake.phi(dim, rest)
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    (
        builder.build().expect("all clique nodes have reactions"),
        layout,
    )
}

/// The initial labeling `(α, α, s)` for the equality reduction: Alice and
/// Bob broadcast `alpha`, the cube nodes spell the snake vertex `s`.
pub fn eq_initial_labeling(layout: ReductionLayout, alpha: bool, vertex: u32) -> Vec<bool> {
    clique_uniform_labeling(layout.n, |node| {
        if node < layout.state_base {
            alpha
        } else {
            vertex >> (node - layout.state_base) & 1 == 1
        }
    })
}

/// Builds a per-node-uniform clique labeling from a node-bit function.
pub fn clique_uniform_labeling(n: usize, bit_of: impl Fn(NodeId) -> bool) -> Vec<bool> {
    let graph = topology::clique(n);
    let mut labeling = vec![false; graph.edge_count()];
    for node in 0..n {
        for &e in graph.out_edges(node) {
            labeling[e] = bit_of(node);
        }
    }
    labeling
}

/// Builds the Theorem B.4 general-`r` equality reduction on `K_{d+4}`:
/// nodes 2–3 are the latch `(ℓ₃, ℓ₄)` of the paper. Snake positions are
/// grouped into chunks of `3r`; Alice's and Bob's inputs are indexed by
/// chunk.
///
/// # Panics
///
/// Panics if the snake contains vertex 0, if `r == 0`, or if the input
/// lengths differ from the chunk count `⌈|S| / 3r⌉`.
pub fn eq_reduction_with_latch(
    snake: &Snake,
    r: usize,
    x: &[bool],
    y: &[bool],
) -> (Protocol<bool>, ReductionLayout) {
    assert!(r >= 1, "fairness parameter must be positive");
    assert!(
        !snake.contains(0),
        "normalize the snake away from vertex 0 first"
    );
    let chunk = 3 * r;
    let chunks = snake.len().div_ceil(chunk);
    assert_eq!(x.len(), chunks, "x must be indexed by snake chunks");
    assert_eq!(y.len(), chunks, "y must be indexed by snake chunks");
    let d = snake.dimension();
    let n = d as usize + 4;
    let layout = ReductionLayout {
        n,
        state_base: 4,
        d,
    };
    let deg = n - 1;
    let mut builder = Protocol::builder(topology::clique(n), 1.0)
        .name(format!("eq-latch-reduction(d={d}, r={r})"));
    // Alice and Bob.
    for (node, input, idle) in [(0usize, x.to_vec(), true), (1, y.to_vec(), false)] {
        let snake = snake.clone();
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let latch = (peer(incoming, me, 2), peer(incoming, me, 3)) == (true, true);
                    let state = peer_state(incoming, me, 4, d, false);
                    let bit = if !latch {
                        match snake.position(state) {
                            Some(j) => input[j / chunk],
                            None => idle,
                        }
                    } else {
                        idle
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    // Latch node 2 copies node 3; latch node 3 sets on disagreement.
    builder = builder.reaction(
        2,
        FnBufReaction::new(
            vec![false; deg],
            move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                let bit = peer(incoming, me, 3);
                out.fill(bit);
                u64::from(bit)
            },
        ),
    );
    builder = builder.reaction(
        3,
        FnBufReaction::new(
            vec![false; deg],
            move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                let bit = peer(incoming, me, 2) || peer(incoming, me, 0) != peer(incoming, me, 1);
                out.fill(bit);
                u64::from(bit)
            },
        ),
    );
    // Cube-state nodes.
    for node in 4..n {
        let snake = snake.clone();
        let dim = (node - 4) as u32;
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let latch = (peer(incoming, me, 2), peer(incoming, me, 3)) == (true, true);
                    let bit = if latch {
                        false
                    } else {
                        let rest = peer_state(incoming, me, 4, d, false);
                        snake.phi(dim, rest)
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    (
        builder.build().expect("all clique nodes have reactions"),
        layout,
    )
}

/// The initial labeling for the latch reduction: `(α, α, 0, 0, s)`.
pub fn latch_initial_labeling(layout: ReductionLayout, alpha: bool, vertex: u32) -> Vec<bool> {
    clique_uniform_labeling(layout.n, |node| match node {
        0 | 1 => alpha,
        2 | 3 => false,
        _ => vertex >> (node - layout.state_base) & 1 == 1,
    })
}

/// Builds the Theorem B.7 set-disjointness reduction on `K_{d+2}`: Alice
/// and Bob hold characteristic vectors over a `q`-element universe; snake
/// position `j` queries element `I(j) = j mod q`.
///
/// # Panics
///
/// Panics if the snake contains vertex 0, `q == 0`, or the vectors don't
/// have length `q`.
pub fn disj_reduction(
    snake: &Snake,
    q: usize,
    x: &[bool],
    y: &[bool],
) -> (Protocol<bool>, ReductionLayout) {
    assert!(q >= 1, "universe must be nonempty");
    assert_eq!(x.len(), q, "x is a characteristic vector over [q]");
    assert_eq!(y.len(), q, "y is a characteristic vector over [q]");
    assert!(
        !snake.contains(0),
        "normalize the snake away from vertex 0 first"
    );
    let d = snake.dimension();
    let n = d as usize + 2;
    let layout = ReductionLayout {
        n,
        state_base: 2,
        d,
    };
    let deg = n - 1;
    let mut builder =
        Protocol::builder(topology::clique(n), 1.0).name(format!("disj-reduction(d={d}, q={q})"));
    for (node, input, other) in [(0usize, x.to_vec(), 1usize), (1, y.to_vec(), 0)] {
        let snake = snake.clone();
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let other_label = peer(incoming, me, other);
                    let state = peer_state(incoming, me, 2, d, false);
                    let bit = if !other_label {
                        match snake.position(state) {
                            Some(j) => input[j % q],
                            None => false,
                        }
                    } else {
                        false
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    for node in 2..n {
        let snake = snake.clone();
        let dim = (node - 2) as u32;
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![false; deg],
                move |me: NodeId, incoming: &[bool], _, out: &mut [bool]| {
                    let tops = (peer(incoming, me, 0), peer(incoming, me, 1));
                    let bit = if tops == (true, true) {
                        let rest = peer_state(incoming, me, 2, d, false);
                        snake.phi(dim, rest)
                    } else {
                        false
                    };
                    out.fill(bit);
                    u64::from(bit)
                },
            ),
        );
    }
    (
        builder.build().expect("all clique nodes have reactions"),
        layout,
    )
}

/// The Claim B.8 oscillation witness for [`disj_reduction`]: a scripted
/// r-fair schedule (with `r ≥ 2q + 2`) and matching initial labeling that
/// keep the system oscillating forever when element `k` is in both sets.
///
/// The schedule walks the cube state along the snake (activating only the
/// cube nodes) and, at every snake position `j` with `I(j) = k`, toggles
/// Alice and Bob twice: down (both see the other at 1) and up (both see 0
/// and re-arm from their common element). Returns `(schedule, initial
/// labeling)`.
///
/// # Panics
///
/// Panics if `k ≥ q` or no snake position maps to `k` (needs `|S| ≥ q`).
pub fn disj_oscillation_schedule(
    snake: &Snake,
    layout: ReductionLayout,
    q: usize,
    k: usize,
) -> (Scripted, Vec<bool>) {
    assert!(k < q, "element out of range");
    let len = snake.len();
    let j_star = (0..len).find(|j| j % q == k).expect("|S| ≥ q required");
    let state_nodes: Vec<NodeId> = (layout.state_base..layout.n).collect();
    let mut steps: Vec<Vec<NodeId>> = Vec::new();
    // One full lap of the snake, toggling at every position ≡ k (mod q).
    for m in 1..=len {
        steps.push(state_nodes.clone());
        if (j_star + m) % len % q == k {
            steps.push(vec![0, 1]);
            steps.push(vec![0, 1]);
        }
    }
    let initial = eq_initial_labeling(layout, true, snake.vertices()[j_star]);
    (Scripted::cycle(steps), initial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::convergence::{classify_sync, SyncOutcome};
    use stateless_core::engine::Simulation;
    use stateless_core::schedule::Schedule;

    fn snake4() -> Snake {
        // Vertex 0 isolated from the snake: required for the x ≠ y
        // convergence claim (see Snake::embedded_isolated).
        Snake::embedded_isolated(4).unwrap()
    }

    #[test]
    fn eq_reduction_oscillates_iff_inputs_equal() {
        let snake = snake4();
        let len = snake.len();
        let x: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
        // Equal inputs: oscillation from (α, α, s₀).
        let (p, layout) = eq_reduction(&snake, &x, &x);
        let init = eq_initial_labeling(layout, false, snake.vertices()[0]);
        let outcome = classify_sync(&p, &vec![0; layout.n], init, 100_000).unwrap();
        assert!(
            matches!(outcome, SyncOutcome::Oscillating { .. }),
            "x = y must oscillate"
        );
        // Different inputs: stabilization to (1, 0, 0^d).
        let mut y = x.clone();
        y[2] = !y[2];
        let (p, layout) = eq_reduction(&snake, &x, &y);
        for start in 0..len {
            let init = eq_initial_labeling(layout, true, snake.vertices()[start]);
            let outcome = classify_sync(&p, &vec![0; layout.n], init, 100_000).unwrap();
            match outcome {
                SyncOutcome::LabelStable { labeling, .. } => {
                    let expected = clique_uniform_labeling(layout.n, |node| node == 0);
                    assert_eq!(labeling, expected, "stable point is (1, 0, 0^d)");
                }
                other => panic!("x ≠ y must stabilize, got {other:?}"),
            }
        }
    }

    #[test]
    fn eq_reduction_stabilizes_from_off_snake_states() {
        let snake = snake4();
        let x: Vec<bool> = vec![true; snake.len()];
        let mut y = x.clone();
        y[0] = false;
        let (p, layout) = eq_reduction(&snake, &x, &y);
        // Off-snake state, disagreeing tops.
        let init = clique_uniform_labeling(layout.n, |node| node == 1);
        let outcome = classify_sync(&p, &vec![0; layout.n], init, 100_000).unwrap();
        assert!(outcome.is_label_stable());
    }

    #[test]
    fn latch_reduction_oscillates_iff_inputs_equal() {
        let snake = snake4();
        let r = 2;
        let chunks = snake.len().div_ceil(3 * r);
        let x: Vec<bool> = (0..chunks).map(|i| i % 2 == 0).collect();
        let (p, layout) = eq_reduction_with_latch(&snake, r, &x, &x);
        let init = latch_initial_labeling(layout, false, snake.vertices()[0]);
        let outcome = classify_sync(&p, &vec![0; layout.n], init, 100_000).unwrap();
        assert!(matches!(outcome, SyncOutcome::Oscillating { .. }));

        let mut y = x.clone();
        y[0] = !y[0];
        let (p, layout) = eq_reduction_with_latch(&snake, r, &x, &y);
        let init = latch_initial_labeling(layout, false, snake.vertices()[0]);
        let outcome = classify_sync(&p, &vec![0; layout.n], init, 100_000).unwrap();
        assert!(outcome.is_label_stable(), "x ≠ y must stabilize");
    }

    #[test]
    fn disj_reduction_oscillates_on_intersecting_sets() {
        let snake = snake4();
        let q = 3;
        let x = vec![true, false, true];
        let y = vec![false, false, true]; // intersect at element 2
        let (p, layout) = disj_reduction(&snake, q, &x, &y);
        let (mut sched, init) = disj_oscillation_schedule(&snake, layout, q, 2);
        let mut sim = Simulation::new(&p, &vec![0; layout.n], init.clone()).unwrap();
        let period = sched.period();
        let mut changed = false;
        let mut active = Vec::new();
        for _ in 0..4 * period {
            let before = sim.labeling().to_vec();
            sched.activations_into(sim.time() + 1, layout.n, &mut active);
            sim.step_with(&active);
            changed |= before != sim.labeling();
        }
        assert!(changed, "labels keep moving");
        // After whole laps the labeling returns to the start: a true cycle.
        let mut sim2 = Simulation::new(&p, &vec![0; layout.n], init.clone()).unwrap();
        let mut sched2 = disj_oscillation_schedule(&snake, layout, q, 2).0;
        sim2.run(&mut sched2, period as u64);
        assert_eq!(sim2.labeling(), &init[..], "period closes the oscillation");
    }

    #[test]
    fn disj_reduction_converges_on_disjoint_sets() {
        let snake = snake4();
        let q = 3;
        let x = vec![true, false, false];
        let y = vec![false, true, false]; // disjoint
        let (p, layout) = disj_reduction(&snake, q, &x, &y);
        // The same adversarial schedules that witness oscillation for
        // intersecting sets all lead to stabilization here.
        for k in 0..q {
            let (mut sched, init) = disj_oscillation_schedule(&snake, layout, q, k);
            let mut sim = Simulation::new(&p, &vec![0; layout.n], init).unwrap();
            let laps = 6 * sched.period() as u64;
            sim.run(&mut sched, laps);
            assert!(sim.is_label_stable(), "disjoint sets stabilize (k={k})");
        }
        // And the synchronous run stabilizes as well.
        let init = eq_initial_labeling(layout, true, snake.vertices()[0]);
        let outcome = classify_sync(&p, &vec![0; layout.n], init, 100_000).unwrap();
        assert!(outcome.is_label_stable());
    }

    #[test]
    fn disj_schedule_is_r_fair_for_r_at_least_2q_plus_2() {
        let snake = snake4();
        let q = 3;
        let (_, layout) = disj_reduction(&snake, q, &[true; 3], &[true; 3]);
        let (sched, _) = disj_oscillation_schedule(&snake, layout, q, 1);
        let fairness = sched.fairness(layout.n).expect("all nodes scheduled");
        assert!(fairness <= 2 * q + 2, "fairness {fairness} ≤ 2q+2");
    }
}
