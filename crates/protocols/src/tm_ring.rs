//! Theorem 5.2 (`L/poly ⊆ OSu_log`): simulating a space-bounded Turing
//! machine on the unidirectional ring.
//!
//! Exactly as in the proof, the label space is
//! `Σ = Z × {0,1} × [|Z|+1] × {0,1}`: a machine configuration, the bit
//! under its input head (filled in by the node that owns that input
//! position as the label sweeps the ring), a step counter that triggers
//! the periodic re-initialization — the self-stabilization mechanism —
//! and the published output bit.
//!
//! Node 0 runs `n` interleaved simulations (one per circulating label):
//! each time a label passes, it applies one machine step `π(z, b)`,
//! refreshes `b` with its own input, and bumps the counter; at counter
//! `|Z|` it publishes `F(z)` and restarts from `z₀`. Every other node
//! answers input queries (when the head of the carried configuration sits
//! on its position) and forwards everything else unchanged.

use std::sync::Arc;

use stateless_core::label::bits_for_cardinality;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;
use turing_machine::Machine;

/// The ring label `(z, b, c, o)` of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TmLabel {
    /// Configuration index in `0..|Z|`.
    pub z: u64,
    /// The input bit under `z`'s head (maintained by the owning node).
    pub b: bool,
    /// Steps simulated since the last reset, in `0..=|Z|`.
    pub c: u64,
    /// The published output.
    pub o: bool,
}

impl TmLabel {
    /// A canonical label: initial configuration, zero counter.
    pub fn reset(machine: &Machine) -> Self {
        TmLabel {
            z: machine.config_to_index(&machine.initial_config()),
            b: false,
            c: 0,
            o: false,
        }
    }
}

/// Builds the Theorem 5.2 simulation protocol for `machine` on the
/// unidirectional ring with `n = machine.input_len()` nodes.
///
/// The protocol **output-stabilizes from any initial labeling** to
/// `machine.decide(x)` at every node, provided the machine is a decider
/// (halts within `|Z|` steps — which every decider does). Label complexity
/// is `log₂(2·|Z|·(|Z|+1)·2) = O(log |Z|) = O(log n)` for
/// logspace machines.
///
/// # Panics
///
/// Panics if `machine.input_len() < 2`.
pub fn tm_ring_protocol(machine: Machine) -> Protocol<TmLabel> {
    let n = machine.input_len();
    assert!(n >= 2, "ring simulation needs n ≥ 2");
    let z_count = machine.config_count();
    let label_bits = bits_for_cardinality(u128::from(z_count) * 2 * (u128::from(z_count) + 1) * 2);
    let machine = Arc::new(machine);
    let mut builder = Protocol::builder(topology::unidirectional_ring(n), label_bits)
        .name(format!("tm-on-uniring(n={n}, |Z|={z_count})"));

    let template = vec![TmLabel::reset(&machine)];
    // Node 0: the simulation driver.
    {
        let m = Arc::clone(&machine);
        builder = builder.reaction(
            0,
            FnBufReaction::new(
                template.clone(),
                move |_, incoming: &[TmLabel], input, outgoing: &mut [TmLabel]| {
                    let lab = incoming[0];
                    // Clamp garbage from adversarial initial labelings.
                    let z_idx = lab.z.min(m.config_count() - 1);
                    let config = m.index_to_config(z_idx).expect("clamped index is valid");
                    let out = if lab.c >= m.config_count() {
                        // Periodic reset: publish the finished run's verdict.
                        let verdict = m.is_accepting(&config);
                        let z0 = m.initial_config();
                        let b0 = input == 1; // z₀'s head is at position 0 = us
                        TmLabel {
                            z: m.config_to_index(&z0),
                            b: b0,
                            c: 0,
                            o: verdict,
                        }
                    } else {
                        let next = m.step_with_bit(&config, lab.b);
                        let b = if next.input_head == 0 {
                            input == 1
                        } else {
                            lab.b
                        };
                        TmLabel {
                            z: m.config_to_index(&next),
                            b,
                            c: lab.c + 1,
                            o: lab.o,
                        }
                    };
                    outgoing[0] = out;
                    u64::from(out.o)
                },
            ),
        );
    }
    // Nodes 1..n: input servers and relays.
    for node in 1..n {
        let m = Arc::clone(&machine);
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                template.clone(),
                move |i: NodeId, incoming: &[TmLabel], input, outgoing: &mut [TmLabel]| {
                    let lab = incoming[0];
                    let z_idx = lab.z.min(m.config_count() - 1);
                    let config = m.index_to_config(z_idx).expect("clamped index is valid");
                    let b = if config.input_head == i {
                        input == 1
                    } else {
                        lab.b
                    };
                    let out = TmLabel {
                        z: z_idx,
                        b,
                        c: lab.c.min(m.config_count()),
                        o: lab.o,
                    };
                    outgoing[0] = out;
                    u64::from(out.o)
                },
            ),
        );
    }
    builder.build().expect("all ring nodes have reactions")
}

/// A safe synchronous round budget for output stabilization from any
/// initial labeling: two full reset periods plus a propagation lap.
pub fn output_rounds_bound(machine: &Machine) -> u64 {
    let n = machine.input_len() as u64;
    2 * n * (machine.config_count() + 1) + 2 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use stateless_core::engine::Simulation;
    use stateless_core::schedule::Synchronous;
    use turing_machine::library;

    fn run_from(machine: &Machine, x: &[bool], initial: Vec<TmLabel>) -> Vec<u64> {
        let p = tm_ring_protocol(machine.clone());
        let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        let mut sim = Simulation::new(&p, &inputs, initial).unwrap();
        sim.run(&mut Synchronous, output_rounds_bound(machine));
        sim.outputs().to_vec()
    }

    #[test]
    fn parity_machine_on_ring_matches_direct_decision() {
        let n = 3;
        let m = library::parity_machine(n);
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let expected = u64::from(m.decide(&x).unwrap());
            let outs = run_from(&m, &x, vec![TmLabel::reset(&m); n]);
            assert_eq!(outs, vec![expected; n], "x = {x:?}");
        }
    }

    #[test]
    fn contains_11_machine_on_ring_matches() {
        let n = 4;
        let m = library::contains_11_machine(n);
        for bits in [0b0000u32, 0b0110, 0b1010, 0b1100, 0b1111] {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let expected = u64::from(m.decide(&x).unwrap());
            let outs = run_from(&m, &x, vec![TmLabel::reset(&m); n]);
            assert_eq!(outs, vec![expected; n], "x = {x:?}");
        }
    }

    #[test]
    fn first_equals_last_uses_the_work_tape_on_ring() {
        let n = 4;
        let m = library::first_equals_last_machine(n);
        for x in [
            [true, false, false, true],
            [true, false, false, false],
            [false, true, true, false],
            [false, true, true, true],
        ] {
            let expected = u64::from(m.decide(&x).unwrap());
            let outs = run_from(&m, &x, vec![TmLabel::reset(&m); n]);
            assert_eq!(outs, vec![expected; n], "x = {x:?}");
        }
    }

    #[test]
    fn self_stabilizes_from_adversarial_labels() {
        let n = 3;
        let m = library::mod_count_machine(n, 3, 0);
        let mut rng = StdRng::seed_from_u64(99);
        let x = [true, true, true]; // 3 ≡ 0 (mod 3): accept
        for _ in 0..10 {
            let initial: Vec<TmLabel> = (0..n)
                .map(|_| TmLabel {
                    z: rng.random_range(0..10 * m.config_count()),
                    b: rng.random_bool(0.5),
                    c: rng.random_range(0..2 * m.config_count()),
                    o: rng.random_bool(0.5),
                })
                .collect();
            let outs = run_from(&m, &x, initial);
            assert_eq!(outs, vec![1; n]);
        }
    }

    #[test]
    fn label_complexity_is_logarithmic() {
        for n in [4usize, 8, 16] {
            let m = library::parity_machine(n);
            let p = tm_ring_protocol(m);
            // |Z| = O(n²) ⟹ label bits = O(log n).
            assert!(p.label_bits() <= 6.0 * (n as f64).log2() + 8.0, "n={n}");
        }
    }
}
