//! # stabilization-verify
//!
//! **Exact** verification of label/output r-stabilization for stateless
//! protocols, by model-checking the very object Theorem 3.1's proof
//! manipulates: the product graph over `Σ^E × [r]^n`, whose vertices pair
//! a labeling with a per-node *countdown* (steps each node may remain
//! inactive) and whose edges are the legal activation sets (nonempty,
//! containing every node whose countdown hit 1).
//!
//! A protocol is label r-stabilizing **iff** no reachable strongly
//! connected component of this graph contains a labeling-changing edge:
//! every infinite r-fair run eventually lives inside one SCC, and label
//! convergence means the labeling component goes quiet. The checker
//! returns either [`Verdict::Stabilizing`] or a concrete
//! [`CycleWitness`] — an initial labeling plus a cyclic activation script
//! that oscillates forever (and is r-fair by construction).
//!
//! The state space is `|Σ|^{|E|} · r^n` — exponential, exactly as the
//! paper's PSPACE-completeness (Theorem 4.2) and communication bounds
//! (Theorem 4.1) say it must be. The explorer packs each state into a few
//! `u64` words (alphabet-index labels, narrow countdown fields), resolves
//! states through a **sharded** fingerprint index with exact confirmation
//! (`(shard, local)` ids packed into one `u64`), stores transitions in
//! flat CSR arrays, and condenses them with the parallel trim +
//! Forward–Backward SCC engine of `stateless_core::scc` (serial Tarjan
//! is retained as the [`SccBackend::Tarjan`] reference). Frontier
//! expansion, condensation, and the witness edge scan are parallel over
//! [`Limits::threads`] workers and *deterministic*: verdicts, state
//! numbering, and witnesses are bit-identical at every thread count —
//! see the [`product`] module docs for the memory model and the
//! determinism contract. Experiment E4 uses it to confirm Example 1's
//! tightness, and bench `verify` plus the per-thread `verify_scaling`
//! perf rows (including the isolated SCC phase) chart the blowup and
//! the scaling.
//!
//! [`Limits::faults`] extends every query with a **Byzantine adversary**:
//! faulty nodes' reactions are replaced by adversarially-chosen labels,
//! the product graph branches over every choice (both quantifiers stay
//! demonic, so the SCC machinery is unchanged), and a `NotStabilizing`
//! witness carries the adversary's concrete strategy
//! ([`CycleWitness::adversary`]) alongside the schedule. The [`sweep`]
//! module quantifies over fault *placements* too.
//!
//! Long explorations are **crash-safe**: a [`CheckpointPolicy`] on
//! [`Limits::checkpoint`] persists the sharded state index as
//! checksummed epoch files at batch boundaries, a [`Limits::deadline`]
//! degrades gracefully to [`Verdict::Partial`] with a resumable
//! [`CheckpointHandle`] instead of erroring, and
//! [`verify_label_stabilization_resumed`] /
//! [`verify_output_stabilization_resumed`] continue from the newest
//! valid epoch — after verifying the stored instance fingerprint
//! ([`checkpoint`] module docs) — to a verdict bit-identical to an
//! uninterrupted run at any thread count.
//!
//! Repeated queries go through the [`cache`] module's [`VerdictCache`]:
//! exact memoization keyed by the instance fingerprint (which excludes
//! thread counts, SCC backend, and deadlines — they never change the
//! verdict), with LRU eviction under a byte budget, optional
//! checksummed on-disk persistence, and `Partial`-as-resume-pointer
//! semantics so a deadline-truncated run is *continued*, never served
//! as an answer. The cached sweep variants
//! ([`sweep_byzantine_placements_cached`] /
//! [`sweep_crash_placements_cached`]) route every placement through a
//! shared cache and report per-row hit/miss/resumed provenance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod product;
pub mod stable;
pub mod sweep;

pub use cache::{CacheOutcome, CachedVerdict, Provenance, VerdictCache};
pub use checkpoint::{CheckpointHandle, CheckpointPolicy, ResumeError};
#[doc(hidden)]
pub use product::{
    explore_product, explore_product_resumed, product_graph_csr, verify_label_stabilization_naive,
    verify_label_stabilization_resumed_at, verify_output_stabilization_naive,
    verify_output_stabilization_resumed_at, ExploredProduct,
};
pub use product::{
    verify_label_stabilization, verify_label_stabilization_resumed,
    verify_label_stabilization_with_stats, verify_output_stabilization,
    verify_output_stabilization_resumed, verify_output_stabilization_with_stats, CycleWitness,
    ExploreStats, Limits, SccBackend, Verdict, VerifyError,
};
pub use stable::enumerate_stable_labelings;
pub use stateless_core::fault::FaultModel;
pub use stateless_core::symmetry::SymmetryMode;
pub use sweep::{
    byzantine_placements, sweep_byzantine_placements, sweep_byzantine_placements_cached,
    sweep_crash_placements, sweep_crash_placements_cached, CachedPlacementVerdict,
    PlacementVerdict,
};
