//! The labeling × countdown product graph and its SCC analysis.
//!
//! # Memory model
//!
//! The explorer is built on the fingerprint-interning machinery of
//! [`stateless_core::intern`], so the product graph is stored flat:
//!
//! * **Packed states.** Each product state `(labeling, countdown,
//!   outputs)` is bit-packed into a fixed number of `u64` words: every
//!   edge label becomes a `⌈log₂|Σ|⌉`-bit alphabet index and every
//!   per-node countdown a `⌈log₂ r⌉`-bit field (outputs, tracked only for
//!   output-stabilization queries, are palette indices in a parallel flat
//!   `u32` row). A state of a 16-edge Boolean protocol with `r ≤ 16`
//!   occupies 16 bytes instead of three heap `Vec`s *plus* their
//!   `HashMap`-key clones — several-fold less memory per state, which is
//!   what bounds exact verification in practice.
//! * **Fingerprint interning.** States are resolved through a seeded
//!   FxHash fingerprint index ([`FingerprintIndex`]) whose every hit is
//!   confirmed by exact equality against the packed arena, so hash
//!   collisions cost a comparison but never a wrong verdict — and no
//!   owned key is ever stored.
//! * **CSR edges.** Transitions live in flat compressed-sparse-row
//!   arrays (`edge_offsets` / `edge_targets` / `edge_meta`), built in
//!   state order during the breadth-first expansion — 8 bytes per edge
//!   instead of a `Vec<Vec<(usize, bool, u32)>>`.
//! * **Tarjan SCC.** Components come from one iterative Tarjan pass over
//!   the CSR arrays; the reverse graph Kosaraju needs is never
//!   materialized.
//!
//! The previous owned-`Vec`-interning explorer is retained as
//! [`verify_label_stabilization_naive`] / [`verify_output_stabilization_naive`]
//! and differentially tested against this one (`tests/differential.rs`);
//! it exists for testing only. One behavioral refinement: the packed
//! explorer requires the reactions to be closed over `alphabet` and
//! reports a violation immediately as [`VerifyError::BadParameters`],
//! where the naive explorer would silently grow the state space until
//! [`Limits::max_states`] tripped.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::Hasher;

use stateless_core::convergence::all_labelings;
use stateless_core::intern::{bits_for, pack, unpack, FingerprintIndex, FxBuildHasher, FxHasher};
use stateless_core::label::Label;
use stateless_core::prelude::*;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of product states to materialize.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        // The packed-arena explorer stores a Boolean-alphabet state in a
        // word or two (plus ~16 bytes of fingerprint index and 8 bytes per
        // CSR edge), so 16M states is a few hundred MB — the old
        // owned-`Vec` explorer exhausted the same memory near 2M.
        Limits {
            max_states: 16_000_000,
        }
    }
}

/// Errors from exact verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The product graph exceeded [`Limits::max_states`].
    TooManyStates {
        /// The limit that was hit.
        limit: usize,
    },
    /// A protocol probe failed.
    Core(CoreError),
    /// Parameters out of range (e.g. `r = 0`, `n > 16`, or a reaction
    /// that emits labels outside the declared alphabet).
    BadParameters {
        /// Description.
        what: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooManyStates { limit } => {
                write!(f, "product graph exceeded {limit} states")
            }
            VerifyError::Core(e) => write!(f, "protocol probe failed: {e}"),
            VerifyError::BadParameters { what } => write!(f, "bad parameters: {what}"),
        }
    }
}

impl Error for VerifyError {}

impl From<CoreError> for VerifyError {
    fn from(e: CoreError) -> Self {
        VerifyError::Core(e)
    }
}

/// A concrete non-convergence witness: start at `labeling` and repeat
/// `schedule` forever; the labeling never converges, and the schedule is
/// r-fair by the countdown construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness<L> {
    /// The labeling at the cycle entry.
    pub labeling: Vec<L>,
    /// The cyclic activation script.
    pub schedule: Vec<Vec<NodeId>>,
}

/// The verification verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<L> {
    /// Every r-fair run from every initial labeling converges.
    Stabilizing,
    /// Some r-fair run oscillates forever; here is one.
    NotStabilizing(CycleWitness<L>),
}

impl<L> Verdict<L> {
    /// Whether the verdict is [`Verdict::Stabilizing`].
    pub fn is_stabilizing(&self) -> bool {
        matches!(self, Verdict::Stabilizing)
    }
}

/// Size accounting for one exploration, reported by
/// [`verify_label_stabilization_with_stats`]. All byte figures are the
/// flat-array payloads actually allocated (the fingerprint index adds
/// roughly 16 bytes per state on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Product states materialized.
    pub states: usize,
    /// Product transitions materialized.
    pub edges: usize,
    /// Packed `u64` words per state.
    pub words_per_state: usize,
    /// Bytes of state storage: the packed arena plus output rows.
    pub state_bytes: usize,
    /// Bytes of CSR edge storage (`edge_offsets`/`edge_targets`/`edge_meta`).
    pub edge_bytes: usize,
}

/// `edge_meta` bit holding the "interesting" flag (the labeling — or the
/// outputs, for output-stabilization — changed along the edge). The low
/// 16 bits hold the activation mask (`n ≤ 16`).
const META_INTERESTING: u32 = 1 << 16;

struct Explorer<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    /// Deduplicated alphabet; packed label fields are indices into it.
    alphabet: Vec<L>,
    label_index: HashMap<L, u32, FxBuildHasher>,
    label_width: u32,
    countdown_width: u32,
    words_per_state: usize,
    /// Packed state arena: state `u` is `arena[u*w..(u+1)*w]`.
    arena: Vec<u64>,
    /// Output palette-index rows (`n` per state), only when
    /// `track_outputs`; `out_palette_index` interns the raw `Output`
    /// values (witnesses never need the values back, so no reverse
    /// palette is kept).
    out_rows: Vec<u32>,
    out_palette_index: HashMap<Output, u32, FxBuildHasher>,
    index: FingerprintIndex,
    n_states: usize,
    /// CSR transition arrays: state `u`'s edges are
    /// `edge_targets[edge_offsets[u]..edge_offsets[u+1]]` with matching
    /// `edge_meta` (activation mask | [`META_INTERESTING`]). Built in
    /// state order during expansion, so no second pass is needed.
    edge_offsets: Vec<usize>,
    edge_targets: Vec<u32>,
    edge_meta: Vec<u32>,
    // -- reusable scratch (no per-state or per-probe allocation) --
    state_buf: Vec<u64>,
    label_idx_buf: Vec<u32>,
    next_label_idx: Vec<u32>,
    countdown_buf: Vec<u8>,
    out_idx_buf: Vec<u32>,
    next_out_idx: Vec<u32>,
    labeling_buf: Vec<L>,
    in_buf: Vec<L>,
    out_buf: Vec<L>,
    free_buf: Vec<usize>,
}

impl<'p, L: Label> Explorer<'p, L> {
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: Limits,
    ) -> Result<Self, VerifyError> {
        let n = protocol.node_count();
        let e = protocol.edge_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        // Deduplicate the alphabet (first occurrence wins) so equal labels
        // share one packed index and states dedup exactly as in the naive
        // explorer.
        let mut label_index: HashMap<L, u32, FxBuildHasher> = HashMap::default();
        let mut dedup: Vec<L> = Vec::with_capacity(alphabet.len());
        for l in alphabet {
            if !label_index.contains_key(l) {
                label_index.insert(l.clone(), dedup.len() as u32);
                dedup.push(l.clone());
            }
        }
        let label_width = bits_for(dedup.len());
        let countdown_width = bits_for(r as usize);
        let state_bits = e * label_width as usize + n * countdown_width as usize;
        let words_per_state = state_bits.div_ceil(64).max(1);
        let mut ex = Explorer {
            protocol,
            inputs: inputs.to_vec(),
            r,
            track_outputs,
            alphabet: dedup,
            label_index,
            label_width,
            countdown_width,
            words_per_state,
            arena: Vec::new(),
            out_rows: Vec::new(),
            out_palette_index: HashMap::default(),
            index: FingerprintIndex::new(),
            n_states: 0,
            edge_offsets: vec![0],
            edge_targets: Vec::new(),
            edge_meta: Vec::new(),
            state_buf: vec![0; words_per_state],
            label_idx_buf: vec![0; e],
            next_label_idx: vec![0; e],
            countdown_buf: vec![0; n],
            out_idx_buf: vec![0; n],
            next_out_idx: vec![0; n],
            labeling_buf: Vec::with_capacity(e),
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            free_buf: Vec::with_capacity(n),
        };
        // Initialization vertices: every labeling, full countdown, zero
        // outputs (palette index 0 is pre-seeded with the placeholder 0).
        if track_outputs {
            ex.out_palette_index.insert(0, 0);
            ex.next_out_idx.fill(0);
        }
        let digit_alphabet: Vec<u32> = (0..ex.alphabet.len() as u32).collect();
        for digits in all_labelings(&digit_alphabet, e) {
            ex.state_buf.fill(0);
            for (k, &d) in digits.iter().enumerate() {
                pack(
                    &mut ex.state_buf,
                    k * label_width as usize,
                    label_width,
                    u64::from(d),
                );
            }
            for i in 0..n {
                pack(
                    &mut ex.state_buf,
                    e * label_width as usize + i * countdown_width as usize,
                    countdown_width,
                    u64::from(r - 1),
                );
            }
            ex.intern_scratch(limits)?;
        }
        let mut cursor = 0;
        while cursor < ex.n_states {
            ex.expand(cursor, limits)?;
            cursor += 1;
        }
        debug_assert_eq!(ex.edge_offsets.len(), ex.n_states + 1);
        Ok(ex)
    }

    /// Interns the packed state in `state_buf` (and, when outputs are
    /// tracked, the palette row in `next_out_idx`): returns the id of the
    /// confirmed-equal existing state, or appends a new one.
    fn intern_scratch(&mut self, limits: Limits) -> Result<u32, VerifyError> {
        let w = self.words_per_state;
        let n = self.protocol.node_count();
        let mut h = FxHasher::default();
        for &word in &self.state_buf {
            h.write_u64(word);
        }
        if self.track_outputs {
            for &o in &self.next_out_idx {
                h.write_u32(o);
            }
        }
        let fp = h.finish();
        let (arena, outs, sbuf, obuf) = (
            &self.arena,
            &self.out_rows,
            &self.state_buf,
            &self.next_out_idx,
        );
        let track = self.track_outputs;
        let hit = self.index.probe(fp, self.n_states as u64, |id| {
            let id = id as usize;
            arena[id * w..(id + 1) * w] == sbuf[..]
                && (!track || outs[id * n..(id + 1) * n] == obuf[..])
        });
        if let Some(id) = hit {
            return Ok(id as u32);
        }
        if self.n_states >= limits.max_states.min(u32::MAX as usize - 1) {
            return Err(VerifyError::TooManyStates {
                limit: limits.max_states,
            });
        }
        let id = self.n_states as u32;
        self.arena.extend_from_slice(&self.state_buf);
        if track {
            self.out_rows.extend_from_slice(&self.next_out_idx);
        }
        self.n_states += 1;
        Ok(id)
    }

    /// Decodes state `u` from the packed arena into the scratch buffers
    /// (`labeling_buf`/`label_idx_buf`/`countdown_buf`/`out_idx_buf`).
    fn load(&mut self, u: usize) {
        let w = self.words_per_state;
        let e = self.protocol.edge_count();
        let n = self.protocol.node_count();
        let lw = self.label_width;
        let cw = self.countdown_width;
        let row = &self.arena[u * w..(u + 1) * w];
        self.labeling_buf.clear();
        for k in 0..e {
            let idx = unpack(row, k * lw as usize, lw) as u32;
            self.label_idx_buf[k] = idx;
            self.labeling_buf.push(self.alphabet[idx as usize].clone());
        }
        for i in 0..n {
            self.countdown_buf[i] = unpack(row, e * lw as usize + i * cw as usize, cw) as u8 + 1;
        }
        if self.track_outputs {
            self.out_idx_buf
                .copy_from_slice(&self.out_rows[u * n..(u + 1) * n]);
        }
    }

    fn expand(&mut self, u: usize, limits: Limits) -> Result<(), VerifyError> {
        let n = self.protocol.node_count();
        let e = self.protocol.edge_count();
        let lw = self.label_width;
        let cw = self.countdown_width;
        self.load(u);
        let forced: u32 = (0..n)
            .filter(|&i| self.countdown_buf[i] == 1)
            .map(|i| 1 << i)
            .sum();
        self.free_buf.clear();
        self.free_buf
            .extend((0..n).filter(|&i| self.countdown_buf[i] != 1));
        let free_count = self.free_buf.len();
        // Every activation set: forced nodes plus any subset of the rest
        // (skipping the empty total set).
        for subset in 0..(1u32 << free_count) {
            let mut mask = forced;
            for k in 0..free_count {
                if subset >> k & 1 == 1 {
                    mask |= 1 << self.free_buf[k];
                }
            }
            if mask == 0 {
                continue;
            }
            self.next_label_idx.copy_from_slice(&self.label_idx_buf);
            if self.track_outputs {
                self.next_out_idx.copy_from_slice(&self.out_idx_buf);
            }
            let graph = self.protocol.graph();
            for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                // Buffered reaction probe: all reads come from the
                // pre-step `labeling_buf`, so the per-node commits into
                // next_label_idx cannot corrupt later probes.
                let y = self.protocol.apply_buffered(
                    i,
                    &self.labeling_buf,
                    self.inputs[i],
                    &mut self.in_buf,
                    &mut self.out_buf,
                );
                for (slot, &eid) in self.out_buf.iter().zip(graph.out_edges(i)) {
                    let Some(&idx) = self.label_index.get(slot) else {
                        return Err(VerifyError::BadParameters {
                            what: format!(
                                "node {i} emitted the label {slot:?}, which is \
                                 outside the declared alphabet"
                            ),
                        });
                    };
                    self.next_label_idx[eid] = idx;
                }
                if self.track_outputs {
                    let fresh = self.out_palette_index.len() as u32;
                    let yi = *self.out_palette_index.entry(y).or_insert(fresh);
                    self.next_out_idx[i] = yi;
                }
            }
            let interesting = if self.track_outputs {
                self.next_out_idx != self.out_idx_buf
            } else {
                self.next_label_idx != self.label_idx_buf
            };
            // Pack the successor: labels, then countdowns (reset to r for
            // activated nodes, decremented otherwise).
            self.state_buf.fill(0);
            for (k, &idx) in self.next_label_idx.iter().enumerate() {
                pack(&mut self.state_buf, k * lw as usize, lw, u64::from(idx));
            }
            for i in 0..n {
                let cd = if mask >> i & 1 == 1 {
                    self.r
                } else {
                    self.countdown_buf[i] - 1
                };
                pack(
                    &mut self.state_buf,
                    e * lw as usize + i * cw as usize,
                    cw,
                    u64::from(cd - 1),
                );
            }
            let v = self.intern_scratch(limits)?;
            self.edge_targets.push(v);
            self.edge_meta
                .push(mask | if interesting { META_INTERESTING } else { 0 });
        }
        self.edge_offsets.push(self.edge_targets.len());
        Ok(())
    }

    /// Iterative Tarjan SCC over the CSR arrays; returns the component id
    /// per state. Unlike Kosaraju, no reverse graph is materialized — the
    /// auxiliary state is four flat per-state arrays plus two stacks.
    fn sccs(&self) -> Vec<u32> {
        let n = self.n_states;
        let mut comp = vec![u32::MAX; n];
        // Discovery indices, offset by one so 0 means "unvisited".
        let mut order = vec![0u32; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut call: Vec<(u32, usize)> = Vec::new();
        let mut next_order: u32 = 1;
        let mut comp_count: u32 = 0;
        for root in 0..n {
            if order[root] != 0 {
                continue;
            }
            order[root] = next_order;
            low[root] = next_order;
            next_order += 1;
            stack.push(root as u32);
            on_stack[root] = true;
            call.push((root as u32, self.edge_offsets[root]));
            while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
                let vu = v as usize;
                if *cursor < self.edge_offsets[vu + 1] {
                    let w = self.edge_targets[*cursor] as usize;
                    *cursor += 1;
                    if order[w] == 0 {
                        order[w] = next_order;
                        low[w] = next_order;
                        next_order += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        call.push((w as u32, self.edge_offsets[w]));
                    } else if on_stack[w] {
                        low[vu] = low[vu].min(order[w]);
                    }
                } else {
                    if low[vu] == order[vu] {
                        loop {
                            let w = stack.pop().expect("Tarjan stack holds v");
                            on_stack[w as usize] = false;
                            comp[w as usize] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        let pu = parent as usize;
                        low[pu] = low[pu].min(low[vu]);
                    }
                }
            }
        }
        comp
    }

    /// Finds a cycle through an "interesting" intra-SCC edge, as a
    /// witness. The *first* such edge suffices — its endpoints share an
    /// SCC, so the closing path always exists and one BFS settles the
    /// whole component; the BFS bookkeeping is flat per-state arrays
    /// (predecessor + mask, plus a reusable queue), not hashed maps.
    fn witness(&self, comp: &[u32]) -> Option<CycleWitness<L>> {
        let (u, v, mask) = self.first_interesting_intra_scc_edge(comp)?;
        let mut prev: Vec<u32> = vec![u32::MAX; self.n_states];
        let mut prev_mask: Vec<u32> = vec![0; self.n_states];
        let mut queue: VecDeque<u32> = VecDeque::new();
        // BFS from v back to u inside the component.
        queue.push_back(v as u32);
        let mut found = v == u;
        'bfs: while let Some(w) = queue.pop_front() {
            let wu = w as usize;
            for c in self.edge_offsets[wu]..self.edge_offsets[wu + 1] {
                let x = self.edge_targets[c] as usize;
                if comp[x] == comp[u] && x != v && prev[x] == u32::MAX {
                    prev[x] = w;
                    prev_mask[x] = self.edge_meta[c] & 0xFFFF;
                    if x == u {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(x as u32);
                }
            }
        }
        debug_assert!(found, "u and v share an SCC, so v reaches u");
        if !found {
            return None;
        }
        // Reconstruct u →(mask) v → … → u.
        let mut masks = vec![mask];
        let mut path_rev = Vec::new();
        let mut at = u;
        while at != v {
            path_rev.push(prev_mask[at]);
            at = prev[at] as usize;
        }
        masks.extend(path_rev.into_iter().rev());
        let n = self.protocol.node_count();
        let schedule = masks
            .into_iter()
            .map(|m| (0..n).filter(|&i| m >> i & 1 == 1).collect())
            .collect();
        Some(CycleWitness {
            labeling: self.decode_labeling(u),
            schedule,
        })
    }

    /// Scans the CSR arrays for the first labeling/output-changing edge
    /// whose endpoints share a component.
    fn first_interesting_intra_scc_edge(&self, comp: &[u32]) -> Option<(usize, usize, u32)> {
        for u in 0..self.n_states {
            for c in self.edge_offsets[u]..self.edge_offsets[u + 1] {
                let meta = self.edge_meta[c];
                if meta & META_INTERESTING == 0 {
                    continue;
                }
                let v = self.edge_targets[c] as usize;
                if comp[u] == comp[v] {
                    return Some((u, v, meta & 0xFFFF));
                }
            }
        }
        None
    }

    /// Decodes state `u`'s labeling from the packed arena.
    fn decode_labeling(&self, u: usize) -> Vec<L> {
        let w = self.words_per_state;
        let lw = self.label_width;
        let row = &self.arena[u * w..(u + 1) * w];
        (0..self.protocol.edge_count())
            .map(|k| self.alphabet[unpack(row, k * lw as usize, lw) as usize].clone())
            .collect()
    }

    fn stats(&self) -> ExploreStats {
        ExploreStats {
            states: self.n_states,
            edges: self.edge_targets.len(),
            words_per_state: self.words_per_state,
            state_bytes: self.arena.len() * 8 + self.out_rows.len() * 4,
            edge_bytes: self.edge_offsets.len() * std::mem::size_of::<usize>()
                + self.edge_targets.len() * 4
                + self.edge_meta.len() * 4,
        }
    }
}

/// Decides **label** r-stabilization of `protocol` under the given inputs,
/// exactly, by exploring the full product graph over `alphabet`-labelings.
///
/// `alphabet` must be closed under the reactions; a reaction emitting a
/// label outside it is reported as [`VerifyError::BadParameters`].
///
/// See the [module docs](self) for the memory model (packed states,
/// fingerprint interning, CSR edges, Tarjan SCC).
///
/// # Errors
///
/// [`VerifyError::TooManyStates`] if the product graph exceeds the limit;
/// [`VerifyError::BadParameters`] for `r = 0`, oversized graphs, or a
/// non-closed alphabet.
pub fn verify_label_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    verify_label_stabilization_with_stats(protocol, inputs, alphabet, r, limits).map(|(v, _)| v)
}

/// [`verify_label_stabilization`], also reporting the size of the explored
/// product graph ([`ExploreStats`]) — the figures behind the
/// `verify_scaling` perf section.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_label_stabilization_with_stats<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, false, limits)?;
    let comp = ex.sccs();
    let verdict = match ex.witness(&comp) {
        Some(w) => Verdict::NotStabilizing(w),
        None => Verdict::Stabilizing,
    };
    Ok((verdict, ex.stats()))
}

/// Decides **output** r-stabilization (the weaker condition: outputs must
/// converge, labels may dance forever). Same exploration with outputs in
/// the state.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_output_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, true, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

// ---------------------------------------------------------------------------
// Naive reference explorer (owned-`Vec` interning + Kosaraju), kept for
// differential testing only.
// ---------------------------------------------------------------------------

/// One product-graph vertex of the naive explorer: `(labeling, countdown,
/// outputs)` (outputs all-zero when not tracked).
type ProductState<L> = (Vec<L>, Vec<u8>, Vec<Output>);

struct NaiveExplorer<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    index: HashMap<ProductState<L>, usize>,
    states: Vec<ProductState<L>>,
    /// edges[u] = (v, interesting: labeling/output changed, activation mask)
    edges: Vec<Vec<(usize, bool, u32)>>,
    in_buf: Vec<L>,
    out_buf: Vec<L>,
}

impl<'p, L: Label> NaiveExplorer<'p, L> {
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: Limits,
    ) -> Result<Self, VerifyError> {
        let n = protocol.node_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        let mut ex = NaiveExplorer {
            protocol,
            inputs: inputs.to_vec(),
            r,
            track_outputs,
            index: HashMap::new(),
            states: Vec::new(),
            edges: Vec::new(),
            in_buf: Vec::new(),
            out_buf: Vec::new(),
        };
        for labeling in all_labelings(alphabet, protocol.edge_count()) {
            let state = (labeling, vec![r; n], vec![0; n]);
            ex.intern(state, limits)?;
        }
        let mut cursor = 0;
        while cursor < ex.states.len() {
            ex.expand(cursor, limits)?;
            cursor += 1;
        }
        Ok(ex)
    }

    fn intern(&mut self, state: ProductState<L>, limits: Limits) -> Result<usize, VerifyError> {
        if let Some(&id) = self.index.get(&state) {
            return Ok(id);
        }
        if self.states.len() >= limits.max_states {
            return Err(VerifyError::TooManyStates {
                limit: limits.max_states,
            });
        }
        let id = self.states.len();
        self.index.insert(state.clone(), id);
        self.states.push(state);
        self.edges.push(Vec::new());
        Ok(id)
    }

    fn expand(&mut self, u: usize, limits: Limits) -> Result<(), VerifyError> {
        let n = self.protocol.node_count();
        let (labeling, countdown, outputs) = self.states[u].clone();
        let forced: u32 = (0..n).filter(|&i| countdown[i] == 1).map(|i| 1 << i).sum();
        let free: Vec<usize> = (0..n).filter(|&i| countdown[i] != 1).collect();
        for subset in 0..(1u32 << free.len()) {
            let mut mask = forced;
            for (k, &i) in free.iter().enumerate() {
                if subset >> k & 1 == 1 {
                    mask |= 1 << i;
                }
            }
            if mask == 0 {
                continue;
            }
            let mut next_labeling = labeling.clone();
            let mut next_outputs = outputs.clone();
            let graph = self.protocol.graph();
            for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                let y = self.protocol.apply_buffered(
                    i,
                    &labeling,
                    self.inputs[i],
                    &mut self.in_buf,
                    &mut self.out_buf,
                );
                for (slot, &e) in self.out_buf.iter().zip(graph.out_edges(i)) {
                    next_labeling[e] = slot.clone();
                }
                next_outputs[i] = y;
            }
            let next_countdown: Vec<u8> = (0..n)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        self.r
                    } else {
                        countdown[i] - 1
                    }
                })
                .collect();
            let interesting = if self.track_outputs {
                next_outputs != outputs
            } else {
                next_labeling != labeling
            };
            if !self.track_outputs {
                next_outputs = vec![0; n]; // outputs not part of the state
            }
            let v = self.intern((next_labeling, next_countdown, next_outputs), limits)?;
            self.edges[u].push((v, interesting, mask));
        }
        Ok(())
    }

    /// Kosaraju SCC; returns the component id per state.
    fn sccs(&self) -> Vec<usize> {
        let n = self.states.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            seen[start] = true;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < self.edges[u].len() {
                    let v = self.edges[u][*next].0;
                    *next += 1;
                    if !seen[v] {
                        seen[v] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, _, _) in outs {
                redges[v].push(u);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(u) = stack.pop() {
                for &v in &redges[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = c;
                        stack.push(v);
                    }
                }
            }
            c += 1;
        }
        comp
    }

    fn witness(&self, comp: &[usize]) -> Option<CycleWitness<L>> {
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, interesting, mask) in outs {
                if !interesting || comp[u] != comp[v] {
                    continue;
                }
                let mut prev: HashMap<usize, (usize, u32)> = HashMap::new();
                let mut queue = VecDeque::from([v]);
                let mut found = v == u;
                while let Some(w) = queue.pop_front() {
                    if found {
                        break;
                    }
                    for &(x, _, m) in &self.edges[w] {
                        if comp[x] == comp[u] && x != v && !prev.contains_key(&x) {
                            prev.insert(x, (w, m));
                            if x == u {
                                found = true;
                                break;
                            }
                            queue.push_back(x);
                        }
                    }
                }
                if !found && v != u {
                    continue;
                }
                let mut masks = vec![mask];
                let mut path_rev = Vec::new();
                let mut at = u;
                while at != v {
                    let &(p, m) = prev.get(&at).expect("BFS reached u");
                    path_rev.push(m);
                    at = p;
                }
                masks.extend(path_rev.into_iter().rev());
                let n = self.protocol.node_count();
                let schedule = masks
                    .into_iter()
                    .map(|m| (0..n).filter(|&i| m >> i & 1 == 1).collect())
                    .collect();
                return Some(CycleWitness {
                    labeling: self.states[u].0.clone(),
                    schedule,
                });
            }
        }
        None
    }
}

/// Reference implementation of [`verify_label_stabilization`]: the
/// original explorer interning owned `(Vec<L>, Vec<u8>, Vec<Output>)`
/// states in a `HashMap` and running Kosaraju over `Vec<Vec<…>>` edges.
/// Kept for differential testing and as the baseline in the
/// `verify_scaling` perf section; the two must agree on every verdict.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
#[doc(hidden)]
pub fn verify_label_stabilization_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = NaiveExplorer::explore(protocol, inputs, alphabet, r, false, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

/// Reference implementation of [`verify_output_stabilization`]; see
/// [`verify_label_stabilization_naive`].
///
/// # Errors
///
/// As for [`verify_output_stabilization`].
#[doc(hidden)]
pub fn verify_output_stabilization_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = NaiveExplorer::explore(protocol, inputs, alphabet, r, true, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::reaction::{ConstReaction, FnReaction};

    fn rotate_ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 42)))
            .build()
            .unwrap()
    }

    #[test]
    fn constant_protocol_is_stabilizing_for_all_r() {
        let p = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3 {
            let v = verify_label_stabilization(&p, &[0; 3], &[false, true], r, Limits::default())
                .unwrap();
            assert!(v.is_stabilizing(), "r = {r}");
        }
    }

    #[test]
    fn rotation_is_not_label_stabilizing_but_output_stabilizes() {
        let p = rotate_ring(3);
        let label =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        match label {
            Verdict::NotStabilizing(w) => {
                assert!(!w.schedule.is_empty());
            }
            Verdict::Stabilizing => panic!("rotation never label-stabilizes"),
        }
        let output =
            verify_output_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        assert!(output.is_stabilizing(), "constant outputs converge");
    }

    #[test]
    fn witness_schedule_really_oscillates() {
        let p = rotate_ring(3);
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 3, Limits::default()).unwrap();
        let Verdict::NotStabilizing(w) = v else {
            panic!("expected a witness")
        };
        // Replay the witness: labels must change within a few script laps
        // and the labeling must return to the start each lap (it is a
        // cycle in the product graph).
        let mut sim = Simulation::new(&p, &[0; 3], w.labeling.clone()).unwrap();
        let mut sched = Scripted::cycle(w.schedule.clone());
        sched.validate(3).expect("witness names real nodes");
        let mut changed = false;
        let mut active = Vec::new();
        for _ in 0..w.schedule.len() {
            let before = sim.labeling().to_vec();
            sched.activations_into(sim.time() + 1, 3, &mut active);
            sim.step_with(&active);
            changed |= before != sim.labeling();
        }
        assert!(changed, "labels changed along the cycle");
        assert_eq!(sim.labeling(), &w.labeling[..], "cycle closes");
    }

    #[test]
    fn limits_are_enforced() {
        let p = rotate_ring(4);
        let err =
            verify_label_stabilization(&p, &[0; 4], &[false, true], 3, Limits { max_states: 10 })
                .unwrap_err();
        assert_eq!(err, VerifyError::TooManyStates { limit: 10 });
    }

    #[test]
    fn r_zero_is_rejected() {
        let p = rotate_ring(3);
        assert!(matches!(
            verify_label_stabilization(&p, &[0; 3], &[false, true], 0, Limits::default()),
            Err(VerifyError::BadParameters { .. })
        ));
    }

    #[test]
    fn non_closed_alphabet_is_rejected() {
        // The reaction emits `true`, which the declared alphabet lacks.
        let p = Protocol::builder(topology::unidirectional_ring(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, _: &[bool], _| (vec![true], 0)))
            .build()
            .unwrap();
        let err =
            verify_label_stabilization(&p, &[0; 3], &[false], 2, Limits::default()).unwrap_err();
        assert!(matches!(err, VerifyError::BadParameters { .. }), "{err:?}");
    }

    #[test]
    fn duplicate_alphabet_entries_do_not_inflate_the_state_space() {
        let p = rotate_ring(3);
        let (_, plain) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        let (_, duped) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true, false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(plain.states, duped.states);
    }

    #[test]
    fn packed_explorer_matches_naive_on_verdicts() {
        // Hand-picked spread: stabilizing and oscillating, label and
        // output mode, r from 1 to 3 (the proptests in
        // tests/differential.rs cover random protocols).
        let rot = rotate_ring(3);
        let constp = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3u8 {
            for p in [&rot, &constp] {
                let fast =
                    verify_label_stabilization(p, &[0; 3], &[false, true], r, Limits::default())
                        .unwrap();
                let naive = verify_label_stabilization_naive(
                    p,
                    &[0; 3],
                    &[false, true],
                    r,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(fast.is_stabilizing(), naive.is_stabilizing(), "r = {r}");
                let fast_o =
                    verify_output_stabilization(p, &[0; 3], &[false, true], r, Limits::default())
                        .unwrap();
                let naive_o = verify_output_stabilization_naive(
                    p,
                    &[0; 3],
                    &[false, true],
                    r,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(fast_o.is_stabilizing(), naive_o.is_stabilizing(), "r = {r}");
            }
        }
    }

    #[test]
    fn stats_report_packed_sizes() {
        let p = rotate_ring(3);
        let (_, stats) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        // 3 label bits + 3 countdown bits pack into one word.
        assert_eq!(stats.words_per_state, 1);
        assert!(stats.states > 0 && stats.edges > 0);
        assert_eq!(stats.state_bytes, stats.states * 8);
        // Reachable closure of 8 labelings × countdowns ∈ {1,2}³ minus
        // combinations the dynamics never produce; at least all 8 initial
        // states exist.
        assert!(stats.states >= 8);
    }
}
