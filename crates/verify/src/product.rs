//! The labeling × countdown product graph and its SCC analysis.
//!
//! # Memory model
//!
//! The explorer is built on the fingerprint-interning machinery of
//! [`stateless_core::intern`], so the product graph is stored flat:
//!
//! * **Packed states.** Each product state `(labeling, countdown,
//!   outputs)` is bit-packed into a fixed number of `u64` words: every
//!   edge label becomes a `⌈log₂|Σ|⌉`-bit alphabet index and every
//!   per-node countdown a `⌈log₂ r⌉`-bit field (outputs, tracked only for
//!   output-stabilization queries, ride in a parallel flat word row). A
//!   state of a 16-edge Boolean protocol with `r ≤ 16` occupies 16 bytes
//!   instead of three heap `Vec`s *plus* their `HashMap`-key clones.
//! * **Sharded fingerprint interning.** States are resolved through a
//!   [`ShardedStateIndex`]: the top bits of the seeded FxHash fingerprint
//!   pick one of [`SHARD_COUNT`] self-contained shards, each owning its
//!   fingerprint index, collision side list, and packed-row arenas, and
//!   ids are `(shard, local)` pairs packed into one `u64`. Every
//!   fingerprint hit is confirmed by exact equality against the shard
//!   arena, so hash collisions cost a comparison but never a wrong
//!   verdict.
//! * **No stored edges.** The verifier holds **no full-graph CSR**: a
//!   product transition is a pure function of its packed source row, so
//!   every phase that needs edges regenerates them on the fly —
//!   decode the row, enumerate activation sets, pack each successor,
//!   and resolve it by a read-only fingerprint lookup
//!   ([`StateShard::lookup`]) against the shard arenas. This is the
//!   classic on-the-fly / implicit-graph model-checking move: memory is
//!   O(states) plus bounded transients (per-batch record buffers during
//!   exploration, per-worker successor buffers during SCC, and one
//!   small CSR over the single verdict SCC during witness
//!   reconstruction), never O(edges). [`Limits::max_edges`] survives as
//!   a **traversal budget**: exploration still counts every transition
//!   it generates (each exactly once) and fails with
//!   [`VerifyError::TooManyEdges`] past the budget, bounding wall time
//!   on dense activation sets — it just no longer corresponds to any
//!   stored array.
//! * **Parallel SCC over a successor oracle.** Components come from
//!   [`stateless_core::scc`] driven through its [`scc::SuccessorOracle`]
//!   trait: a **trim** pass (peel states of live in/out-degree 0 — each
//!   is a trivial SCC and no cycle member is ever peeled) followed by
//!   **Forward–Backward** decomposition of the remainder (pivot →
//!   forward set ∩ backward set = one SCC; the three difference slices
//!   recurse as parallel tasks), on [`Limits::threads`] workers, all
//!   regenerating successors from the packed rows on demand. Every FB
//!   task pivots on the **minimum dense state id** of its slice and
//!   both backends return the canonical numbering (components ordered
//!   by minimum member id), so component ids — and hence verdicts and
//!   witnesses — are bit-identical across thread counts and across
//!   backends. The serial iterative Tarjan is retained as
//!   [`SccBackend::Tarjan`] (backed by the `#[doc(hidden)]`
//!   `stateless_core::scc::tarjan_oracle`), a `_naive`-style reference
//!   for the differential suite (`tests/scc.rs`,
//!   `tests/differential.rs`) — use the default
//!   [`SccBackend::ForwardBackward`] everywhere else.
//!
//! ## Migration note (`max_edges` / `TooManyEdges`)
//!
//! Through PR 5, [`VerifyError::TooManyEdges`] meant "the stored CSR
//! arrays would exceed [`Limits::max_edges`] entries". The stored
//! arrays are gone; the error now means "exploration *generated* more
//! than `max_edges` transitions". Because the old explorer also
//! generated each edge exactly once, the error trips at the same point
//! on the same graphs with the same `limit` payload — existing matchers
//! on `TooManyEdges { limit }` keep working unchanged — but the default
//! budget is now sized for wall time, not for a 8-byte-per-edge array
//! (see [`Limits::default`]). [`ExploreStats::edge_bytes`] likewise now
//! reports the **peak transient** edge bytes (largest per-batch record
//! buffer, plus the witness-phase component CSR) instead of final CSR
//! storage.
//!
//! # Parallel exploration and determinism
//!
//! Frontier expansion runs on [`Limits::threads`] workers in batches of
//! bounded fan-out, in three phases per batch:
//!
//! 1. **Expand** (parallel over chunks): workers claim contiguous slices
//!    of the batch's source states, decode each state from the shard
//!    arenas (read locks only), enumerate its activation sets, and emit,
//!    per target shard, a record stream of `(stream key, fingerprint,
//!    packed words)` — successors are *not* resolved yet, and nothing
//!    per-edge outlives the batch.
//! 2. **Intern** (parallel over shards): each shard is claimed by exactly
//!    one worker, which replays that shard's records **in stream order**
//!    (chunk by chunk, record by record) against the shard's fingerprint
//!    index — so local id assignment never depends on thread timing, and
//!    shards never contend.
//! 3. **Number** (serial barrier): fresh states from all shards are
//!    merged by stream key — the position of the edge that first
//!    discovered them — and dense ids are assigned in that order, which
//!    is exactly the order the sequential explorer interns in. The
//!    batch's record buffers are then dropped; only the edge count (the
//!    traversal budget) and the peak transient byte figure survive.
//!
//! Batch and chunk boundaries derive only from per-state degree
//! estimates (never the thread count), shard assignment depends only on
//! the fingerprint, and every merge is ordered by stream position — so
//! verdicts, state numbering, and witnesses are **bit-identical for
//! every thread count**, and `threads = 1` *is* the sequential packed
//! explorer rather than a separate code path. `tests/differential.rs`
//! asserts this invariant on random protocols.
//!
//! # Symmetry-quotient exploration ([`Limits::symmetry`])
//!
//! With [`SymmetryMode::Auto`], the explorer quotients the product
//! graph by the protocol's behaviorally-validated automorphism group
//! ([`stateless_core::symmetry`]): every packed successor is rewritten
//! to the lexicographically-least element of its orbit *before*
//! fingerprint resolution, so exactly one representative per orbit is
//! ever interned — up to `|G|`× fewer states and generated edges (n× on
//! rings, 2n× on bidirectional rings).
//!
//! **Soundness.** A validated automorphism `g` commutes with the
//! product transition: `succ_{π_g(A)}(g·s) = g·succ_A(s)`, and it
//! preserves whether an edge is "interesting" (labels/outputs changed).
//! The seed set (all labelings × full countdowns × zero outputs) is
//! closed under the group, so canonical seeding covers every orbit.
//! Hence any full-graph cycle maps edge-by-edge onto a closed walk of
//! the quotient, and conversely any interesting intra-SCC quotient edge
//! lifts to a concrete cycle — the two verdicts coincide. Because the
//! canonical form is a pure function of the state (Booth's minimal
//! rotation on pure ring groups, generator-orbit scan otherwise) and
//! never of thread timing, the cross-thread determinism contract holds
//! verbatim under the quotient.
//!
//! **Witnesses.** Each regenerated quotient edge carries the group
//! element `h` that canonicalized its successor. Witness reconstruction
//! de-canonicalizes: walking the quotient cycle with an accumulated
//! element `c` (concrete mask = `c`-image of the quotient mask, then
//! `c ← c ∘ h⁻¹`), and unrolling laps until `c` returns to the identity
//! (at most `|G|` laps), yields a concrete cycle of the *unquotiented*
//! system — replayed witnesses stay valid `Scripted` schedules exactly
//! as with symmetry off.
//!
//! The previous owned-`Vec`-interning explorer is retained as
//! [`verify_label_stabilization_naive`] / [`verify_output_stabilization_naive`]
//! and differentially tested against this one (`tests/differential.rs`);
//! it exists for testing only. One behavioral refinement: the packed
//! explorer requires the reactions to be closed over `alphabet` and
//! reports a violation immediately as [`VerifyError::BadParameters`],
//! where the naive explorer would silently grow the state space until
//! [`Limits::max_states`] tripped.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLockReadGuard};
use std::time::{Duration, Instant};

use stateless_core::checkpoint::{CheckpointError, CheckpointStore, SegmentWriter};
use stateless_core::convergence::all_labelings;
use stateless_core::intern::{
    bits_for, pack, pack_state_id, shard_of, state_fingerprint as fingerprint, unpack,
    unpack_state_id, FxBuildHasher, FxHasher, ShardedStateIndex, StateShard, SHARD_COUNT,
};
use stateless_core::label::Label;
use stateless_core::prelude::*;
use stateless_core::scc;
use stateless_core::symmetry::{Automorphism, CanonScratch, PackedLayout, Symmetry, SymmetryMode};

use crate::checkpoint::{instance_fingerprint, CheckpointHandle, CheckpointPolicy, ResumeError};

/// Exploration limits and parallelism.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum number of product states to materialize.
    pub max_states: usize,
    /// Traversal budget: the maximum number of product transitions
    /// exploration may *generate* (each edge is generated exactly once).
    /// Nothing per-edge is stored anymore — see the module docs'
    /// migration note — but edges outnumber states by the
    /// activation-set fan-out (up to `2^n − 1` per state on dense
    /// activation sets), so the state cap alone does not bound wall
    /// time; this one does. Exceeding it fails with
    /// [`VerifyError::TooManyEdges`], exactly as it always did.
    pub max_edges: usize,
    /// Worker threads for frontier expansion, SCC condensation, and the
    /// interesting-edge scan; `0` means all available cores. Verdicts,
    /// state ids, and witnesses are bit-identical for every value — the
    /// thread count is purely a throughput knob.
    pub threads: usize,
    /// Which SCC engine condenses the product graph. Keep the default
    /// [`SccBackend::ForwardBackward`]; the Tarjan variant exists for
    /// differential testing and as a low-memory fallback.
    pub scc: SccBackend,
    /// Symmetry-quotient exploration. [`SymmetryMode::Off`] (the
    /// default) explores the full product graph exactly as before;
    /// [`SymmetryMode::Auto`] derives behaviorally-validated topology
    /// automorphisms ([`stateless_core::symmetry::Symmetry::derive`])
    /// and interns only orbit-canonical states, shrinking states and
    /// generated edges by up to the group order with the **same**
    /// verdict and a witness that replays on the unquotiented system
    /// (see the module docs' symmetry section). With faults present the
    /// derived group is restricted to its fault-placement-preserving
    /// subgroup (the fault sets act as a node coloring), so quotienting
    /// stays sound under [`Limits::faults`] too.
    pub symmetry: SymmetryMode,
    /// The fault model ([`FaultModel::none`] by default). Byzantine
    /// nodes' reactions are replaced by demonic adversary choices — at
    /// every activation, any label per outgoing edge — and crash nodes'
    /// by the single keep-current-labels choice; both leave their
    /// tracked output frozen at `0`. The product graph then branches
    /// over *scheduler* edges and *adversary-choice* edges, both
    /// universally quantified, so `Stabilizing` means "under every
    /// r-fair schedule **and** every adversary strategy, the
    /// correct-node labels (or outputs) eventually stop changing", and a
    /// [`CycleWitness`] carries the adversary's per-step choices — a
    /// concrete replayable strategy
    /// ([`Simulation::step_with_adversary`](stateless_core::engine::Simulation::step_with_adversary)).
    pub faults: FaultModel,
    /// Wall-clock budget for exploration (`None` — the default — means
    /// unlimited). Unlike [`Limits::max_states`], exceeding it is **not**
    /// an error: exploration stops at the next batch boundary and the
    /// verifier returns [`Verdict::Partial`], carrying a resumable
    /// [`CheckpointHandle`] when a [`Limits::checkpoint`] policy is set.
    /// The budget covers exploration only — a run that finishes
    /// exploring always condenses and reports its full verdict, however
    /// long the SCC phase takes. Batch boundaries depend only on
    /// deterministic exploration totals, but *which* boundary the
    /// deadline trips at is inherently timing-dependent; determinism is
    /// preserved where it matters — any checkpoint, wherever taken,
    /// resumes to the bit-identical final verdict.
    pub deadline: Option<Duration>,
    /// Crash-safe checkpointing policy (`None` — the default — writes
    /// nothing). See [`CheckpointPolicy`]: epochs are written at batch
    /// boundaries into a [`stateless_core::checkpoint::CheckpointStore`]
    /// and resumed with `verify_label_stabilization_resumed` /
    /// `verify_output_stabilization_resumed`.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Limits {
    /// Rejects meaningless limit combinations up front — a zero
    /// checkpoint interval, a non-finite or non-positive wall-clock
    /// interval, a zero epoch retention, or a zero deadline — as
    /// [`VerifyError::BadParameters`] instead of misbehaving
    /// mid-exploration. Every verification entry point (packed and
    /// naive) calls this before exploring.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadParameters`] naming the offending field.
    pub fn validate(&self) -> Result<(), VerifyError> {
        let bad = |what: &str| {
            Err(VerifyError::BadParameters {
                what: what.to_string(),
            })
        };
        if self.deadline == Some(Duration::ZERO) {
            return bad("deadline must be positive (Duration::ZERO would never explore)");
        }
        if let Some(policy) = &self.checkpoint {
            if policy.every_states == Some(0) {
                return bad("checkpoint.every_states must be ≥ 1");
            }
            if let Some(secs) = policy.every_secs {
                if !secs.is_finite() || secs <= 0.0 {
                    return bad("checkpoint.every_secs must be finite and positive");
                }
            }
            if policy.retain == 0 {
                return bad("checkpoint.retain must be ≥ 1 (0 would prune the epoch just written)");
            }
        }
        Ok(())
    }
}

/// The SCC engine used on the explored product graph. Both backends
/// produce the canonical component numbering (components ordered by
/// their minimum dense state id), so verdicts, witnesses, and stats are
/// bit-identical whichever is selected — the differential suite
/// (`tests/scc.rs`, `tests/differential.rs`) asserts exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SccBackend {
    /// Parallel trim + Forward–Backward decomposition on
    /// [`Limits::threads`] workers ([`stateless_core::scc::condense`]).
    #[default]
    ForwardBackward,
    /// Serial iterative Tarjan — the PR 3/4 implementation, kept as the
    /// reference for differential tests; it never materializes the
    /// reverse CSR, so it is also the fallback when memory is tighter
    /// than wall time.
    Tarjan,
}

impl Default for Limits {
    fn default() -> Self {
        // With no stored edges, memory is O(states): a Boolean-alphabet
        // state costs a word or two of packed row plus ~16 bytes of
        // fingerprint index and ~13 bytes of dense/bookkeeping arrays, so
        // 10^8 states is a few GB where the seed's CSR arrays alone would
        // have needed tens. `max_edges` is now a traversal budget (wall
        // time, not storage) and scales accordingly: 2^40 generated
        // transitions is roughly a day of single-core exploration — far
        // past the seed's 2^28 storage cap that dense activation sets
        // kept tripping.
        Limits {
            max_states: 100_000_000,
            max_edges: 1 << 40,
            threads: 0,
            scc: SccBackend::ForwardBackward,
            symmetry: SymmetryMode::Off,
            faults: FaultModel::none(),
            deadline: None,
            checkpoint: None,
        }
    }
}

/// Errors from exact verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The product graph exceeded [`Limits::max_states`].
    TooManyStates {
        /// The limit that was hit.
        limit: usize,
    },
    /// The product graph exceeded [`Limits::max_edges`].
    TooManyEdges {
        /// The limit that was hit.
        limit: usize,
    },
    /// A protocol probe failed.
    Core(CoreError),
    /// Parameters out of range (e.g. `r = 0`, `n > 16`, or a reaction
    /// that emits labels outside the declared alphabet).
    BadParameters {
        /// Description.
        what: String,
    },
    /// Writing a checkpoint epoch failed (an I/O problem in the
    /// [`CheckpointPolicy::dir`] store). Exploration state is intact in
    /// memory but could not be persisted.
    Checkpoint {
        /// The underlying store failure.
        what: String,
    },
    /// Resuming from a checkpoint failed — see [`ResumeError`] for the
    /// typed causes (instance mismatch, no valid epoch, corruption, I/O).
    Resume(ResumeError),
    /// An expand worker panicked on the same chunk twice (once in the
    /// parallel wave, once in the serial retry) — a reaction with a
    /// reproducible panic. When a [`Limits::checkpoint`] policy is set,
    /// everything interned *before* the poisoned batch was written as a
    /// final epoch first, so the work is not lost; fix the reaction and
    /// resume from [`checkpoint`](VerifyError::PoisonedChunk::checkpoint).
    PoisonedChunk {
        /// The panic payload (when it was a string) and the chunk range.
        what: String,
        /// The checkpoint-and-fail epoch, when a policy was set and the
        /// final write succeeded.
        checkpoint: Option<CheckpointHandle>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooManyStates { limit } => {
                write!(f, "product graph exceeded {limit} states")
            }
            VerifyError::TooManyEdges { limit } => {
                write!(f, "product graph exceeded {limit} edges")
            }
            VerifyError::Core(e) => write!(f, "protocol probe failed: {e}"),
            VerifyError::BadParameters { what } => write!(f, "bad parameters: {what}"),
            VerifyError::Checkpoint { what } => {
                write!(f, "checkpoint write failed: {what}")
            }
            VerifyError::Resume(e) => write!(f, "resume failed: {e}"),
            VerifyError::PoisonedChunk { what, checkpoint } => {
                write!(f, "expand worker panicked twice: {what}")?;
                match checkpoint {
                    Some(h) => write!(
                        f,
                        " (progress checkpointed as epoch {} in {})",
                        h.epoch,
                        h.dir.display()
                    ),
                    None => Ok(()),
                }
            }
        }
    }
}

impl Error for VerifyError {}

impl From<CoreError> for VerifyError {
    fn from(e: CoreError) -> Self {
        VerifyError::Core(e)
    }
}

impl From<ResumeError> for VerifyError {
    fn from(e: ResumeError) -> Self {
        VerifyError::Resume(e)
    }
}

impl From<CheckpointError> for VerifyError {
    fn from(e: CheckpointError) -> Self {
        VerifyError::Checkpoint {
            what: e.to_string(),
        }
    }
}

/// A concrete non-convergence witness: start at `labeling` and repeat
/// `schedule` forever; the labeling never converges, and the schedule is
/// r-fair by the countdown construction.
///
/// Under a fault model the witness is a full adversary *strategy*:
/// [`adversary`](CycleWitness::adversary) records, step by step, the
/// labels the Byzantine nodes write — replay it with
/// [`Simulation::step_with_adversary`](stateless_core::engine::Simulation::step_with_adversary)
/// and the correct-node labels oscillate forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness<L> {
    /// The labeling at the cycle entry.
    pub labeling: Vec<L>,
    /// The cyclic activation script.
    pub schedule: Vec<Vec<NodeId>>,
    /// The adversary's choices, one entry per schedule step: for each
    /// *activated Byzantine* node, the labels it writes on its outgoing
    /// edges (in `out_edges` order). Always `schedule.len()` entries;
    /// all of them empty when the fault model is fault-free.
    pub adversary: Vec<Vec<(NodeId, Vec<L>)>>,
}

/// The verification verdict.
///
/// # Migration note (`Verdict::Partial`)
///
/// Through PR 8 this enum had exactly two variants and exploration
/// could only end in a full verdict or a [`VerifyError`]. With
/// [`Limits::deadline`] set, running out of wall clock is **not** an
/// error: the verifier degrades gracefully to [`Verdict::Partial`],
/// reporting how far it got and (when a [`Limits::checkpoint`] policy
/// is set) a resumable [`CheckpointHandle`]. Code that never sets a
/// deadline never sees the new variant; exhaustive matches need one new
/// arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<L> {
    /// Every r-fair run from every initial labeling converges.
    Stabilizing,
    /// Some r-fair run oscillates forever; here is one.
    NotStabilizing(CycleWitness<L>),
    /// The [`Limits::deadline`] expired before exploration finished: no
    /// claim either way. Resume with
    /// [`verify_label_stabilization_resumed`] /
    /// [`verify_output_stabilization_resumed`] to continue toward the
    /// full verdict — which is bit-identical to what an uninterrupted
    /// run would have produced.
    Partial {
        /// Product states interned so far (all of them persisted when
        /// [`checkpoint`](Verdict::Partial::checkpoint) is `Some`).
        states_explored: usize,
        /// States interned but not yet expanded — the remaining frontier.
        frontier_len: usize,
        /// The final checkpoint epoch written at the deadline boundary,
        /// when a [`Limits::checkpoint`] policy was set.
        checkpoint: Option<CheckpointHandle>,
    },
}

impl<L> Verdict<L> {
    /// Whether the verdict is [`Verdict::Stabilizing`]. A
    /// [`Verdict::Partial`] is **not** stabilizing — it is no claim at
    /// all; check [`is_partial`](Verdict::is_partial) first when
    /// deadlines are in play.
    pub fn is_stabilizing(&self) -> bool {
        matches!(self, Verdict::Stabilizing)
    }

    /// Whether the verdict is [`Verdict::Partial`].
    pub fn is_partial(&self) -> bool {
        matches!(self, Verdict::Partial { .. })
    }
}

/// Size accounting for one exploration, reported by
/// [`verify_label_stabilization_with_stats`]. All byte figures are
/// *logical payload* bytes — rows × row width for states, records ×
/// record width for the transient buffers. Allocation slack on top
/// (partially filled arena blocks in each of the [`SHARD_COUNT`]
/// shards, ~16 bytes of fingerprint index per state) is excluded; it is
/// bounded and amortizes away at the state counts where memory matters.
///
/// Every field is bit-identical across thread counts and SCC backends —
/// the differential suite asserts stats equality — so the transient
/// peak is computed only from thread-independent quantities (batch
/// boundaries derive from degree estimates, the witness CSR from the
/// verdict component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Product states materialized.
    pub states: usize,
    /// Product transitions generated during exploration (each exactly
    /// once) — the figure [`Limits::max_edges`] budgets. None of them
    /// are stored.
    pub edges: usize,
    /// Packed `u64` words per state.
    pub words_per_state: usize,
    /// Bytes of state storage: the packed arenas plus output rows.
    pub state_bytes: usize,
    /// **Peak transient** edge bytes: the largest per-batch successor
    /// record buffer exploration ever held (records die with their
    /// batch), maxed with the witness phase's single-component CSR.
    /// Replaces the stored-CSR figure of the pre-oracle verifier — see
    /// the module docs' migration note. The exploration contribution is
    /// capped by the batch-budget ceiling ([`BATCH_EDGE_BUDGET`]); on a
    /// cyclic verdict the witness CSR — proportional to the verdict
    /// SCC's intra-edges, not the whole graph — can exceed it and
    /// dominate this figure.
    pub edge_bytes: usize,
}

/// Ceiling of the per-batch fan-out budget: a batch closes once the
/// estimated edge count of its sources reaches the current budget (see
/// [`Explorer::batch_edge_budget`]). With no stored CSR, the per-batch
/// record buffers (roughly 24–40 bytes per edge) **are** the verifier's
/// entire per-edge memory, so the budget directly caps the transient
/// peak that [`ExploreStats::edge_bytes`] reports — a few MB at this
/// ceiling, independent of the graph.
///
/// The budget ramps from [`BATCH_EDGE_BUDGET_MIN`] with the explored
/// graph size so that small product graphs never see a transient larger
/// than a fraction of their own (former) CSR. It is a function of
/// `(n_states, n_edges)` at the batch boundary — deterministic,
/// identical at every thread count — and **never** of the thread count
/// or the machine: batch and chunk boundaries decide scheduling only
/// (dense numbering is anchored to the globally monotone stream keys,
/// so even the boundaries themselves cannot change the output).
const BATCH_EDGE_BUDGET: u64 = 1 << 17;
/// Floor of the adaptive per-batch fan-out budget.
const BATCH_EDGE_BUDGET_MIN: u64 = 1 << 12;
/// Per-chunk fan-out budget: sources are grouped into chunks of roughly
/// this many edges, the unit of work-stealing inside a batch.
const CHUNK_EDGE_BUDGET: u64 = 1 << 14;
/// Initial labelings interned per seed batch; bounds the seed-phase
/// record buffers exactly like [`BATCH_EDGE_BUDGET`] bounds expansion.
const SEED_BATCH_STATES: usize = 1 << 17;
/// Batches with fewer estimated edges than this run their pipeline waves
/// inline instead of spawning workers: the vendored rayon stand-in has no
/// persistent pool, so each wave costs OS thread spawns, which only
/// amortize over enough work. Purely a scheduling heuristic — the
/// pipeline's results are deterministic by construction, so execution
/// strategy never affects verdicts, ids, or witnesses.
const PARALLEL_MIN_BATCH_EDGES: u64 = 1 << 16;
/// States per chunk of the parallel interesting-edge scan. A fixed
/// constant for the same reason as the budgets above: the scan returns
/// the first hit of the earliest chunk, so chunk boundaries must not
/// depend on the thread count.
const SCAN_CHUNK_STATES: usize = 1 << 14;

/// Read-only exploration parameters, shared by every worker.
struct Config<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    /// Deduplicated alphabet; packed label fields are indices into it.
    alphabet: Vec<L>,
    label_index: HashMap<L, u32, FxBuildHasher>,
    label_width: u32,
    countdown_width: u32,
    words_per_state: usize,
    /// Words of auxiliary per-state output storage (`n` when outputs are
    /// tracked, else 0). Outputs are raw `Output` words — no palette
    /// indirection, so fingerprints and equality never depend on the
    /// (timing-dependent) order outputs are first observed in.
    aux_len: usize,
    n: usize,
    e: usize,
    /// Resolved worker count (≥ 1).
    threads: usize,
    /// The packed bit layout, as [`stateless_core::symmetry`] consumes it.
    layout: PackedLayout,
    /// The validated automorphism group when quotient exploration is on
    /// (`None` for [`SymmetryMode::Off`] or a trivial derived group);
    /// with faults present, already restricted to the
    /// fault-placement-preserving subgroup.
    symmetry: Option<Symmetry>,
    /// The fault model (validated against `n` up front).
    faults: FaultModel,
    /// Edge ids whose *source* node is correct — the only edges whose
    /// changes count as "interesting" under a fault model (Byzantine
    /// edges change at the adversary's whim, crash edges never change).
    /// Empty when the model is fault-free (full-slice comparison is
    /// then the interesting test, exactly the pre-fault code path).
    correct_src_edges: Vec<usize>,
    /// Upper bound on the adversary branching factor of any activation
    /// set: `|Σ|^(total Byzantine out-degree)`, saturating. `1` when
    /// fault-free — every fan-out estimate degrades to the exact
    /// pre-fault figure.
    byz_branch_bound: u64,
}

impl<L: Label> Config<'_, L> {
    /// Number of *free* (not deadline-forced) nodes of a packed state: a
    /// countdown field packs `cd − 1`, so nonzero means the node is not
    /// forced. Sizes the state's fan-out as `2^free` activation sets.
    fn free_count(&self, row: &[u64]) -> u8 {
        let base = self.e * self.label_width as usize;
        let cw = self.countdown_width;
        (0..self.n)
            .filter(|&i| unpack(row, base + i * cw as usize, cw) != 0)
            .count() as u8
    }
}

// The state fingerprint is `stateless_core::intern::state_fingerprint`
// (imported as `fingerprint`): the shard, the confirm-equality probe,
// the checkpoint restore path, and every thread count agree on the one
// function.

/// Per-target-shard record stream of one chunk: each record is an edge
/// whose successor hashes into that shard, in stream order (source state
/// order, then activation-set order). Flat SoA storage — `words`/`aux`
/// are strided by the packed row lengths.
#[derive(Default)]
struct ShardRecords {
    /// Stream keys: `(source dense id << 32) | edge index` for expansion
    /// records, the enumeration index for seed records. Strictly
    /// increasing along each shard's replayed stream; fresh states are
    /// dense-numbered in key order.
    keys: Vec<u64>,
    fps: Vec<u64>,
    words: Vec<u64>,
    aux: Vec<u64>,
}

impl ShardRecords {
    /// A record buffer pre-sized for about `records` records of `w` packed
    /// words and `aux_len` auxiliary words — fingerprints spread records
    /// uniformly over the shards, so sizing each to its fair share (plus
    /// slack) avoids most growth reallocations on the hot path.
    fn with_capacity(records: usize, w: usize, aux_len: usize) -> Self {
        ShardRecords {
            keys: Vec::with_capacity(records),
            fps: Vec::with_capacity(records),
            words: Vec::with_capacity(records * w),
            aux: Vec::with_capacity(records * aux_len),
        }
    }
}

/// One chunk's expansion output: the per-shard successor records plus
/// the chunk's generated-edge count (the traversal-budget figure —
/// nothing per-edge survives the batch).
struct ChunkOut {
    /// Transitions this chunk generated.
    emitted: usize,
    /// Successor records, bucketed by target shard.
    shards: Vec<ShardRecords>,
}

/// One shard's interning output for a batch: the fresh states it
/// discovered (ascending stream keys — the merge relies on it). Hits
/// are not reported back — with no CSR to scatter into, only fresh
/// states matter.
struct ShardIntern {
    /// `(stream key, local id, free-node count)` per fresh state.
    fresh: Vec<(u64, u32, u8)>,
}

/// Reusable per-worker decode/pack buffers for successor enumeration —
/// everything [`Explorer::for_each_successor`] needs beyond the shard
/// read guards. One per worker, warm across states: regenerating an edge
/// allocates nothing.
struct ExpandScratch<L> {
    labeling: Vec<L>,
    label_idx: Vec<u32>,
    next_label_idx: Vec<u32>,
    countdown: Vec<u8>,
    out_words: Vec<u64>,
    next_out_words: Vec<u64>,
    state: Vec<u64>,
    in_buf: Vec<L>,
    react_buf: Vec<L>,
    free_nodes: Vec<usize>,
    /// Out-edge ids of the activated Byzantine nodes of the current
    /// activation set (ascending node id, `out_edges` order) — the digit
    /// positions of the adversary-choice code.
    byz_edges: Vec<usize>,
    /// Canonicalization-side copy of the auxiliary output row: the same
    /// successor is re-canonicalized once per adversary choice, so the
    /// choice-independent `next_out_words` must not be permuted in place.
    canon_aux: Vec<u64>,
    canon: CanonScratch,
}

impl<L: Label> ExpandScratch<L> {
    fn new(cfg: &Config<'_, L>) -> Self {
        ExpandScratch {
            labeling: Vec::with_capacity(cfg.e),
            label_idx: vec![0u32; cfg.e],
            next_label_idx: vec![0u32; cfg.e],
            countdown: vec![0u8; cfg.n],
            out_words: vec![0u64; cfg.aux_len],
            next_out_words: vec![0u64; cfg.aux_len],
            state: vec![0u64; cfg.words_per_state],
            in_buf: Vec::new(),
            react_buf: Vec::new(),
            free_nodes: Vec::with_capacity(cfg.n),
            byz_edges: Vec::with_capacity(cfg.e),
            canon_aux: vec![0u64; cfg.aux_len],
            canon: CanonScratch::default(),
        }
    }
}

/// Runs `count` independent jobs on up to `threads` workers (claimed via
/// an atomic cursor, like the sweep drivers in `stateless-core`) and
/// returns the results **in job order** — callers depend on index order,
/// never completion order, which is what keeps the pipeline
/// deterministic. `threads = 1` runs inline on the caller thread.
/// Renders a caught panic payload for error reporting: the `&str` /
/// `String` payloads `panic!` produces, or a placeholder otherwise.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_indexed<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(count);
    rayon::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(count))
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        for worker in workers {
            indexed.extend(worker.join().expect("pipeline worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Outcome of the batch loop: a fully explored product graph, or the
/// deadline-truncated prefix of one (everything interned so far plus
/// the cursor separating expanded states from the frontier).
enum Explored<'p, L: Label> {
    Complete(Explorer<'p, L>),
    Partial {
        ex: Explorer<'p, L>,
        cursor: usize,
        checkpoint: Option<CheckpointHandle>,
    },
}

/// Magic stamped first into every epoch header segment ("STLSCKP1").
const CKPT_MAGIC: u64 = 0x5354_4c53_434b_5031;
/// Epoch payload format version.
const CKPT_VERSION: u64 = 1;
/// Header segment: magic, version, instance fingerprint, totals,
/// cursor, and the packed layout.
const SEG_HEADER: u32 = 1;
/// Per-shard metadata: shard index, row count, block counts.
const SEG_SHARD: u32 = 2;
/// One arena block of packed state rows (whole rows, local-id order) —
/// streamed out of [`StateShard::row_blocks`] as-is.
const SEG_ROWS: u32 = 3;
/// One arena block of auxiliary output rows.
const SEG_AUX: u32 = 4;
/// A shard's dense ids, one `u32` per local id.
const SEG_DENSE: u32 = 5;

/// The periodic-checkpoint state of one [`Explorer::run`]: the open
/// store, the next epoch number (continuing past any epochs already in
/// the directory), and the interval accounting.
struct CheckpointRun {
    store: CheckpointStore,
    every_states: Option<usize>,
    every_secs: Option<f64>,
    retain: usize,
    instance_fp: u64,
    next_epoch: u64,
    /// `n_states + cursor` at the last write. Progress is interned
    /// states *plus* expanded states: label-mode `r = 1` instances seed
    /// their entire state space up front, so counting interned states
    /// alone would never trigger a write on exactly the long
    /// expansion-bound runs checkpointing exists for.
    progress_at_last: usize,
    last_write: Instant,
}

impl CheckpointRun {
    /// Opens the policy's store (`Ok(None)` when no policy is set).
    fn begin<L: Label>(
        ex: &Explorer<'_, L>,
        cursor: usize,
        limits: &Limits,
    ) -> Result<Option<CheckpointRun>, VerifyError> {
        let Some(policy) = &limits.checkpoint else {
            return Ok(None);
        };
        let store = CheckpointStore::open(&policy.dir)?;
        let next_epoch = store.epochs()?.last().map_or(1, |&k| k + 1);
        Ok(Some(CheckpointRun {
            store,
            every_states: policy.every_states,
            every_secs: policy.every_secs,
            retain: policy.retain,
            instance_fp: ex.instance_fp(limits),
            next_epoch,
            progress_at_last: ex.n_states + cursor,
            last_write: Instant::now(),
        }))
    }

    /// Writes an epoch if either periodic interval has elapsed.
    fn maybe_write<L: Label>(
        &mut self,
        ex: &Explorer<'_, L>,
        cursor: usize,
    ) -> Result<(), VerifyError> {
        let due = self
            .every_states
            .is_some_and(|k| ex.n_states + cursor - self.progress_at_last >= k)
            || self
                .every_secs
                .is_some_and(|s| self.last_write.elapsed().as_secs_f64() >= s);
        if due {
            self.write(ex, cursor)?;
        }
        Ok(())
    }

    /// Writes one epoch at the batch boundary `cursor` and commits it
    /// (prune-to-retention included).
    fn write<L: Label>(
        &mut self,
        ex: &Explorer<'_, L>,
        cursor: usize,
    ) -> Result<CheckpointHandle, VerifyError> {
        let mut writer = self.store.begin_epoch(self.next_epoch)?;
        ex.save_into(&mut writer, cursor, self.instance_fp)?;
        self.store.commit(writer, self.retain)?;
        let handle = CheckpointHandle {
            dir: self.store.dir().to_path_buf(),
            epoch: self.next_epoch,
        };
        self.next_epoch += 1;
        self.progress_at_last = ex.n_states + cursor;
        self.last_write = Instant::now();
        Ok(handle)
    }
}

struct Explorer<'p, L: Label> {
    cfg: Config<'p, L>,
    /// Sharded state storage: fingerprint index + packed rows per shard.
    index: ShardedStateIndex,
    /// Dense id → packed `(shard, local)` id.
    dense_ids: Vec<u64>,
    /// Dense id → free-node count (sizes batches and chunks).
    free_bits: Vec<u8>,
    n_states: usize,
    /// Transitions generated during exploration (each exactly once) —
    /// the running total [`Limits::max_edges`] budgets. No per-edge
    /// storage backs it.
    n_edges: usize,
    /// Peak transient edge bytes (see [`ExploreStats::edge_bytes`]):
    /// max over batches of the record-buffer payload, later maxed with
    /// the witness CSR by `&self` phases — hence atomic.
    peak_edge_bytes: AtomicUsize,
}

impl<'p, L: Label> Explorer<'p, L> {
    /// Full exploration: [`Explorer::prepare`], seed, then
    /// [`Explorer::run`] from cursor 0.
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
    ) -> Result<Explored<'p, L>, VerifyError> {
        let mut ex = Explorer::prepare(protocol, inputs, alphabet, r, track_outputs, limits)?;
        ex.seed(limits)?;
        ex.run(0, limits)
    }

    /// Validates every parameter and constructs an empty explorer —
    /// shared by [`Explorer::explore`] and the checkpoint-resume path,
    /// so both agree on every derived quantity (deduped alphabet, packed
    /// layout, symmetry group, fan-out bounds).
    fn prepare(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
    ) -> Result<Self, VerifyError> {
        limits.validate()?;
        let n = protocol.node_count();
        let e = protocol.edge_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        limits
            .faults
            .validate(n)
            .map_err(|e| VerifyError::BadParameters {
                what: e.to_string(),
            })?;
        // Deduplicate the alphabet (first occurrence wins) so equal labels
        // share one packed index and states dedup exactly as in the naive
        // explorer.
        let mut label_index: HashMap<L, u32, FxBuildHasher> = HashMap::default();
        let mut dedup: Vec<L> = Vec::with_capacity(alphabet.len());
        for l in alphabet {
            if !label_index.contains_key(l) {
                label_index.insert(l.clone(), dedup.len() as u32);
                dedup.push(l.clone());
            }
        }
        // Adversary fan-out: an activated Byzantine node branches over
        // |Σ|^out-degree label choices. The per-source edge index must
        // fit the u32 half of the stream key, so reject models whose
        // worst-case fan-out (every activation set × every choice) could
        // overflow it — such an exploration would be astronomically
        // infeasible anyway.
        let faults = limits.faults;
        let mut byz_branch_bound = 1u64;
        for i in faults.byzantine_nodes().filter(|&i| i < n) {
            for _ in 0..protocol.graph().out_degree(i) {
                byz_branch_bound = byz_branch_bound.saturating_mul(dedup.len() as u64);
            }
        }
        if (1u64 << n).saturating_mul(byz_branch_bound) > u64::from(u32::MAX) {
            return Err(VerifyError::BadParameters {
                what: format!(
                    "adversary fan-out |Σ|^byz-out-degree = {byz_branch_bound} is too \
                     large to enumerate (per-state fan-out must fit 32 bits)"
                ),
            });
        }
        let correct_src_edges: Vec<usize> = if faults.has_faults() {
            protocol
                .graph()
                .edges()
                .filter(|&(_, u, _)| !faults.is_faulty(u))
                .map(|(id, _, _)| id)
                .collect()
        } else {
            Vec::new()
        };
        let label_width = bits_for(dedup.len());
        let countdown_width = bits_for(r as usize);
        let state_bits = e * label_width as usize + n * countdown_width as usize;
        let words_per_state = state_bits.div_ceil(64).max(1);
        let aux_len = if track_outputs { n } else { 0 };
        let threads = if limits.threads == 0 {
            rayon::current_num_threads()
        } else {
            limits.threads
        }
        .max(1);
        let layout = PackedLayout {
            label_width,
            countdown_width,
            edges: e,
            nodes: n,
            words: words_per_state,
            aux: aux_len,
        };
        // Derive the automorphism group up front (Auto only); a trivial
        // group degrades to exactly the Off code path. Fault placement
        // acts as a node coloring: only placement-preserving elements
        // survive (a Byzantine node may only map to a Byzantine node),
        // which is what keeps orbit-canonical interning sound under
        // adversary branching.
        let symmetry = match limits.symmetry {
            SymmetryMode::Off => None,
            SymmetryMode::Auto => {
                let derived = Symmetry::derive(protocol, inputs, &dedup);
                let restricted = if faults.has_faults() {
                    let colors: Vec<u64> = (0..n)
                        .map(|i| {
                            if faults.is_byzantine(i) {
                                1
                            } else if faults.is_crash(i) {
                                2
                            } else {
                                0
                            }
                        })
                        .collect();
                    derived.restrict_to_coloring(&colors)
                } else {
                    derived
                };
                Some(restricted).filter(|s| !s.is_trivial())
            }
        };
        let ex = Explorer {
            cfg: Config {
                protocol,
                inputs: inputs.to_vec(),
                r,
                track_outputs,
                alphabet: dedup,
                label_index,
                label_width,
                countdown_width,
                words_per_state,
                aux_len,
                n,
                e,
                threads,
                layout,
                symmetry,
                faults,
                correct_src_edges,
                byz_branch_bound,
            },
            index: ShardedStateIndex::new(words_per_state, aux_len),
            dense_ids: Vec::new(),
            free_bits: Vec::new(),
            n_states: 0,
            n_edges: 0,
            peak_edge_bytes: AtomicUsize::new(0),
        };
        Ok(ex)
    }

    /// The canonical fingerprint of this exploration instance — what
    /// every checkpoint epoch stamps and the resume path verifies.
    fn instance_fp(&self, limits: &Limits) -> u64 {
        instance_fingerprint(
            self.cfg.protocol,
            &self.cfg.inputs,
            &self.cfg.alphabet,
            self.cfg.r,
            self.cfg.track_outputs,
            &self.cfg.faults,
            limits.symmetry,
            limits.max_states,
            limits.max_edges,
        )
    }

    /// Drives the batch loop from `cursor` to completion — or to the
    /// [`Limits::deadline`], whichever comes first — writing checkpoint
    /// epochs per the [`Limits::checkpoint`] policy at batch boundaries.
    /// Both the fresh exploration and the resume path run through this
    /// one loop, so their behavior can never drift apart.
    fn run(mut self, mut cursor: usize, limits: &Limits) -> Result<Explored<'p, L>, VerifyError> {
        let started = Instant::now();
        let mut ckpt = CheckpointRun::begin(&self, cursor, limits)?;
        while cursor < self.n_states {
            if let Some(deadline) = limits.deadline {
                if started.elapsed() >= deadline {
                    let checkpoint = match &mut ckpt {
                        Some(c) => Some(c.write(&self, cursor)?),
                        None => None,
                    };
                    return Ok(Explored::Partial {
                        ex: self,
                        cursor,
                        checkpoint,
                    });
                }
            }
            cursor = match self.expand_batch(cursor, limits) {
                Ok(end) => end,
                Err(VerifyError::PoisonedChunk { what, .. }) => {
                    // Checkpoint-and-fail: the batch that poisoned did
                    // not commit (assign_dense never ran), so the state
                    // at `cursor` is a clean boundary — persist it
                    // before surfacing the panic.
                    let checkpoint = match &mut ckpt {
                        Some(c) => c.write(&self, cursor).ok(),
                        None => None,
                    };
                    return Err(VerifyError::PoisonedChunk { what, checkpoint });
                }
                Err(e) => return Err(e),
            };
            if let Some(c) = &mut ckpt {
                c.maybe_write(&self, cursor)?;
            }
        }
        Ok(Explored::Complete(self))
    }

    /// Serializes the exploration state at the batch boundary `cursor`
    /// into one epoch: a header segment (format magic + instance
    /// fingerprint + totals), then per shard its metadata, its packed
    /// row arena blocks **as-is** ([`StateShard::row_blocks`] — the
    /// chunked arenas never realloc-copy, so this is a straight stream),
    /// its auxiliary blocks, and its dense ids. Everything else the
    /// explorer holds (`dense_ids`, `free_bits`) is derived and gets
    /// rebuilt on load.
    fn save_into(
        &self,
        writer: &mut SegmentWriter,
        cursor: usize,
        instance_fp: u64,
    ) -> Result<(), VerifyError> {
        debug_assert!(cursor <= self.n_states, "cursor is a batch boundary");
        writer.begin_segment(SEG_HEADER);
        writer.put_u64(CKPT_MAGIC);
        writer.put_u64(CKPT_VERSION);
        writer.put_u64(instance_fp);
        writer.put_u64(self.n_states as u64);
        writer.put_u64(cursor as u64);
        writer.put_u64(self.n_edges as u64);
        writer.put_u64(self.peak_edge_bytes.load(Ordering::Relaxed) as u64);
        writer.put_u64(self.cfg.words_per_state as u64);
        writer.put_u64(self.cfg.aux_len as u64);
        writer.end_segment()?;
        let guards = self.index.read_all();
        for (s, shard) in guards.iter().enumerate() {
            debug_assert_eq!(
                shard.dense_ids().len(),
                shard.len(),
                "batch boundary: every interned state is dense-numbered"
            );
            writer.begin_segment(SEG_SHARD);
            writer.put_u64(s as u64);
            writer.put_u64(shard.len() as u64);
            writer.put_u64(shard.row_blocks().count() as u64);
            writer.put_u64(shard.aux_blocks().count() as u64);
            writer.end_segment()?;
            for block in shard.row_blocks() {
                writer.begin_segment(SEG_ROWS);
                writer.put_u64s(block);
                writer.end_segment()?;
            }
            for block in shard.aux_blocks() {
                writer.begin_segment(SEG_AUX);
                writer.put_u64s(block);
                writer.end_segment()?;
            }
            writer.begin_segment(SEG_DENSE);
            writer.put_u32s(shard.dense_ids());
            writer.end_segment()?;
        }
        Ok(())
    }

    /// Loads a checkpoint epoch into a freshly [`prepare`](Explorer::prepare)d
    /// explorer and returns it with the stored batch cursor. The packed
    /// rows are **re-interned** in local-id order through the very same
    /// [`StateShard::intern`] path exploration uses, so the rebuilt
    /// fingerprint index (probe order, collision side lists) is
    /// byte-for-byte the one an uninterrupted run would hold — which is
    /// what makes the continued exploration bit-identical.
    ///
    /// `epoch` selects an explicit epoch; `None` means the newest one
    /// that passes validation (a torn or corrupted newest epoch falls
    /// back to its predecessor).
    #[allow(clippy::too_many_arguments)]
    fn resume(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
        dir: &Path,
        epoch: Option<u64>,
    ) -> Result<(Self, usize), VerifyError> {
        let corrupt = |what: String| VerifyError::Resume(ResumeError::Corrupt { what });
        let mut ex = Explorer::prepare(protocol, inputs, alphabet, r, track_outputs, limits)?;
        let expected = ex.instance_fp(limits);
        let store = CheckpointStore::open(dir).map_err(ResumeError::from)?;
        let epoch = match epoch {
            Some(k) => k,
            None => store
                .latest_valid_epoch()
                .map_err(ResumeError::from)?
                .ok_or_else(|| ResumeError::NoEpoch {
                    dir: dir.display().to_string(),
                })?,
        };
        let mut reader = store.open_epoch(epoch).map_err(ResumeError::from)?;
        let mut head = reader
            .next_segment()
            .map_err(ResumeError::from)?
            .ok_or_else(|| corrupt("epoch has no header segment".into()))?;
        if head.tag != SEG_HEADER {
            return Err(corrupt(format!(
                "expected header segment, got tag {}",
                head.tag
            )));
        }
        fn take(seg: &mut stateless_core::checkpoint::Segment) -> Result<u64, VerifyError> {
            Ok(seg.take_u64().map_err(ResumeError::from)?)
        }
        if take(&mut head)? != CKPT_MAGIC {
            return Err(corrupt("not a stateless-verify checkpoint".into()));
        }
        let version = take(&mut head)?;
        if version != CKPT_VERSION {
            return Err(corrupt(format!(
                "unsupported checkpoint format version {version} (this build reads {CKPT_VERSION})"
            )));
        }
        let found = take(&mut head)?;
        if found != expected {
            return Err(VerifyError::Resume(ResumeError::InstanceMismatch {
                expected,
                found,
            }));
        }
        let n_states = take(&mut head)? as usize;
        let cursor = take(&mut head)? as usize;
        let n_edges = take(&mut head)? as usize;
        let peak_edge_bytes = take(&mut head)? as usize;
        let words = take(&mut head)? as usize;
        let aux_len = take(&mut head)? as usize;
        if words != ex.cfg.words_per_state || aux_len != ex.cfg.aux_len {
            return Err(corrupt(format!(
                "packed layout mismatch: checkpoint has {words}×u64 + {aux_len} aux words per \
                 state, instance packs {}×u64 + {}",
                ex.cfg.words_per_state, ex.cfg.aux_len
            )));
        }
        if cursor > n_states || n_states >= u32::MAX as usize {
            return Err(corrupt(format!(
                "inconsistent totals: cursor {cursor} of {n_states} states"
            )));
        }
        let mut dense_ids = vec![u64::MAX; n_states];
        let mut free_bits = vec![0u8; n_states];
        let mut rows_flat: Vec<u64> = Vec::new();
        let mut aux_flat: Vec<u64> = Vec::new();
        let mut dense: Vec<u32> = Vec::new();
        let mut expect = |tag: u32| -> Result<stateless_core::checkpoint::Segment, VerifyError> {
            let seg = reader
                .next_segment()
                .map_err(ResumeError::from)?
                .ok_or_else(|| corrupt("epoch ends mid-shard".into()))?;
            if seg.tag != tag {
                return Err(corrupt(format!("expected tag {tag}, got {}", seg.tag)));
            }
            Ok(seg)
        };
        let mut total = 0usize;
        for s in 0..SHARD_COUNT {
            let mut meta = expect(SEG_SHARD)?;
            let idx = take(&mut meta)?;
            if idx as usize != s {
                return Err(corrupt(format!(
                    "shard segments out of order: {idx} at {s}"
                )));
            }
            let len = take(&mut meta)? as usize;
            let n_row_blocks = take(&mut meta)? as usize;
            let n_aux_blocks = take(&mut meta)? as usize;
            rows_flat.clear();
            for _ in 0..n_row_blocks {
                let mut seg = expect(SEG_ROWS)?;
                let count = seg.remaining() / 8;
                seg.take_u64s(count, &mut rows_flat)
                    .map_err(ResumeError::from)?;
            }
            if rows_flat.len() != len * words {
                return Err(corrupt(format!(
                    "shard {s}: {} row words for {len} rows of {words}",
                    rows_flat.len()
                )));
            }
            aux_flat.clear();
            for _ in 0..n_aux_blocks {
                let mut seg = expect(SEG_AUX)?;
                let count = seg.remaining() / 8;
                seg.take_u64s(count, &mut aux_flat)
                    .map_err(ResumeError::from)?;
            }
            if aux_flat.len() != len * aux_len {
                return Err(corrupt(format!(
                    "shard {s}: {} aux words for {len} rows of {aux_len}",
                    aux_flat.len()
                )));
            }
            dense.clear();
            let mut seg = expect(SEG_DENSE)?;
            seg.take_u32s(len, &mut dense).map_err(ResumeError::from)?;
            if seg.remaining() != 0 {
                return Err(corrupt(format!("shard {s}: trailing dense-id bytes")));
            }
            let mut shard = ex.index.write(s);
            for k in 0..len {
                let row = &rows_flat[k * words..(k + 1) * words];
                let aux = &aux_flat[k * aux_len..(k + 1) * aux_len];
                let fp = fingerprint(row, aux);
                if shard_of(fp) != s {
                    return Err(corrupt(format!(
                        "shard {s}: row {k} hashes to shard {}",
                        shard_of(fp)
                    )));
                }
                let (local, fresh) = shard.intern(fp, row, aux);
                if !fresh || local as usize != k {
                    return Err(corrupt(format!("shard {s}: duplicate row at local id {k}")));
                }
                shard.push_dense(dense[k]);
                let d = dense[k] as usize;
                if d >= n_states || dense_ids[d] != u64::MAX {
                    return Err(corrupt(format!("shard {s}: bad dense id {d} at local {k}")));
                }
                dense_ids[d] = pack_state_id(s, local);
                free_bits[d] = ex.cfg.free_count(row);
                total += 1;
            }
        }
        if total != n_states {
            return Err(corrupt(format!(
                "shards hold {total} states, header claims {n_states}"
            )));
        }
        if reader.next_segment().map_err(ResumeError::from)?.is_some() {
            return Err(corrupt("trailing segments after the last shard".into()));
        }
        ex.dense_ids = dense_ids;
        ex.free_bits = free_bits;
        ex.n_states = n_states;
        ex.n_edges = n_edges;
        ex.peak_edge_bytes = AtomicUsize::new(peak_edge_bytes);
        Ok((ex, cursor))
    }

    /// Logical payload bytes of one successor record: stream key +
    /// fingerprint + packed words + auxiliary words.
    fn record_bytes(&self) -> usize {
        16 + 8 * (self.cfg.words_per_state + self.cfg.aux_len)
    }

    /// Folds a transient figure into the deterministic peak.
    fn note_transient_bytes(&self, bytes: usize) {
        self.peak_edge_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Interns the initialization vertices — every labeling with full
    /// countdowns and zero outputs — in enumeration order, batched so the
    /// record buffers stay bounded on huge alphabets.
    fn seed(&mut self, limits: &Limits) -> Result<(), VerifyError> {
        let (w, lw, cw) = (
            self.cfg.words_per_state,
            self.cfg.label_width,
            self.cfg.countdown_width,
        );
        let (n, e, r, threads) = (self.cfg.n, self.cfg.e, self.cfg.r, self.cfg.threads);
        let digit_alphabet: Vec<u32> = (0..self.cfg.alphabet.len() as u32).collect();
        let mut labelings = all_labelings(&digit_alphabet, e);
        let mut state_buf = vec![0u64; w];
        let mut aux_zero = vec![0u64; self.cfg.aux_len];
        let mut canon = CanonScratch::default();
        let mut next_key = 0u64;
        loop {
            let mut recs: Vec<ShardRecords> =
                (0..SHARD_COUNT).map(|_| ShardRecords::default()).collect();
            let mut count = 0usize;
            while count < SEED_BATCH_STATES {
                let Some(digits) = labelings.next() else {
                    break;
                };
                state_buf.fill(0);
                for (k, &d) in digits.iter().enumerate() {
                    pack(&mut state_buf, k * lw as usize, lw, u64::from(d));
                }
                for i in 0..n {
                    pack(
                        &mut state_buf,
                        e * lw as usize + i * cw as usize,
                        cw,
                        u64::from(r - 1),
                    );
                }
                // Seeds are group-closed (uniform countdowns, zero
                // outputs), so canonical seeding still covers every
                // orbit; duplicates dedup at the interning step.
                if let Some(sym) = &self.cfg.symmetry {
                    sym.canonicalize(&self.cfg.layout, &mut state_buf, &mut aux_zero, &mut canon);
                }
                let fp = fingerprint(&state_buf, &aux_zero);
                let rec = &mut recs[shard_of(fp)];
                rec.keys.push(next_key);
                rec.fps.push(fp);
                rec.words.extend_from_slice(&state_buf);
                rec.aux.extend_from_slice(&aux_zero);
                next_key += 1;
                count += 1;
            }
            if count == 0 {
                break;
            }
            self.note_transient_bytes(count * self.record_bytes());
            let chunks = vec![ChunkOut {
                emitted: 0, // seed records are states, not transitions
                shards: recs,
            }];
            let wave_threads = if (count as u64) < PARALLEL_MIN_BATCH_EDGES {
                1
            } else {
                threads
            };
            let interned = {
                let this = &*self;
                run_indexed(wave_threads, SHARD_COUNT, |s| this.intern_shard(s, &chunks))
            };
            self.assign_dense(&interned, limits)?;
            if count < SEED_BATCH_STATES {
                break;
            }
        }
        Ok(())
    }

    /// Estimated fan-out of a state with `free` unforced nodes: every
    /// subset of the free nodes joins the forced ones, minus the empty
    /// total set (possible only when nothing is forced, i.e. `free = n`),
    /// scaled by the adversary branching bound (`1` when fault-free).
    fn est_edges(&self, free: u8) -> u64 {
        ((1u64 << free) - u64::from(usize::from(free) == self.cfg.n))
            .saturating_mul(self.cfg.byz_branch_bound)
    }

    /// The current batch's fan-out budget: an eighth of the explored
    /// graph size so far (states + generated edges), clamped between
    /// [`BATCH_EDGE_BUDGET_MIN`] and [`BATCH_EDGE_BUDGET`]. Small graphs
    /// get batches a small fraction of their own size — keeping the peak
    /// transient well under what storing their CSR used to cost — while
    /// large graphs ramp to the constant ceiling. Depends only on
    /// deterministic, thread-independent exploration totals.
    fn batch_edge_budget(&self) -> u64 {
        (((self.n_states + self.n_edges) / 8) as u64)
            .clamp(BATCH_EDGE_BUDGET_MIN, BATCH_EDGE_BUDGET)
    }

    /// Expands one batch of source states starting at `cursor` through
    /// the three-phase pipeline (see the module docs) and returns the
    /// cursor past the batch.
    fn expand_batch(&mut self, cursor: usize, limits: &Limits) -> Result<usize, VerifyError> {
        // Batch = the next source range whose estimated fan-out fits the
        // budget (always at least one source). Boundaries derive only
        // from per-state degree estimates and prior batch totals, never
        // the thread count.
        let budget = self.batch_edge_budget();
        let mut end = cursor;
        let mut est = 0u64;
        while end < self.n_states && (end == cursor || est < budget) {
            est += self.est_edges(self.free_bits[end]);
            end += 1;
        }
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = cursor;
        let mut acc = 0u64;
        for u in cursor..end {
            acc += self.est_edges(self.free_bits[u]);
            if acc >= CHUNK_EDGE_BUDGET {
                ranges.push((start, u + 1));
                start = u + 1;
                acc = 0;
            }
        }
        if start < end {
            ranges.push((start, end));
        }
        // Small batches run their waves inline — OS thread spawns (no
        // persistent pool in the vendored rayon) only amortize over
        // enough work, and the results are identical either way.
        let threads = if est < PARALLEL_MIN_BATCH_EDGES {
            1
        } else {
            self.cfg.threads
        };
        // Phase 1: expand chunks in parallel, each isolated behind
        // `catch_unwind` so one panicking reaction cannot take down the
        // worker pool (and with it hours of interned states). A panicked
        // chunk is retried once, serially — expansion is read-only and
        // per-chunk state is local, so a transient panic leaves nothing
        // poisoned — and a second panic fails the exploration as
        // [`VerifyError::PoisonedChunk`]; [`Explorer::run`] then writes a
        // final checkpoint-and-fail epoch (the batch never committed, so
        // the pre-batch state is a clean boundary).
        let attempts = {
            let this = &*self;
            run_indexed(threads, ranges.len(), |c| {
                catch_unwind(AssertUnwindSafe(|| {
                    this.expand_chunk(ranges[c].0, ranges[c].1)
                }))
                .map_err(panic_message)
            })
        };
        let mut chunk_outs: Vec<ChunkOut> = Vec::with_capacity(ranges.len());
        for (c, attempt) in attempts.into_iter().enumerate() {
            let (start, end) = ranges[c];
            let outcome = match attempt {
                Ok(r) => r,
                Err(first) => {
                    match catch_unwind(AssertUnwindSafe(|| self.expand_chunk(start, end))) {
                        Ok(r) => r,
                        Err(second) => {
                            return Err(VerifyError::PoisonedChunk {
                                what: format!(
                                    "chunk {start}..{end}: {first}; retry: {}",
                                    panic_message(second)
                                ),
                                checkpoint: None,
                            });
                        }
                    }
                }
            };
            chunk_outs.push(outcome?);
        }
        // Phase 2: replay each shard's record stream in order.
        let interned: Vec<ShardIntern> = {
            let this = &*self;
            run_indexed(threads, SHARD_COUNT, |s| this.intern_shard(s, &chunk_outs))
        };
        // Phase 3 (serial barrier): dense-number the fresh states, then
        // charge the batch against the traversal budget and the peak
        // transient figure. The record buffers die here — nothing
        // per-edge survives the batch.
        self.assign_dense(&interned, limits)?;
        let emitted: usize = chunk_outs.iter().map(|c| c.emitted).sum();
        self.note_transient_bytes(emitted * self.record_bytes());
        self.n_edges += emitted;
        if self.n_edges > limits.max_edges {
            return Err(VerifyError::TooManyEdges {
                limit: limits.max_edges,
            });
        }
        Ok(end)
    }

    /// Phase 1: expands source states `start..end`, emitting the
    /// per-shard successor records. Takes only read locks on the shards;
    /// every per-edge step is allocation-free.
    fn expand_chunk(&self, start: usize, end: usize) -> Result<ChunkOut, VerifyError> {
        let cfg = &self.cfg;
        let guards = self.index.read_all();
        let est: u64 = self.free_bits[start..end]
            .iter()
            .map(|&f| self.est_edges(f))
            .sum();
        let per_shard = (est as usize / SHARD_COUNT) * 5 / 4 + 4;
        let mut shards: Vec<ShardRecords> = (0..SHARD_COUNT)
            .map(|_| ShardRecords::with_capacity(per_shard, cfg.words_per_state, cfg.aux_len))
            .collect();
        let mut emitted = 0usize;
        let mut scratch = ExpandScratch::new(cfg);
        for u in start..end {
            let mut edge_k: u32 = 0;
            self.for_each_successor(
                &guards,
                u,
                &mut scratch,
                |words, aux, _mask, _interesting, _elem, _choice| {
                    let fp = fingerprint(words, aux);
                    let rec = &mut shards[shard_of(fp)];
                    // Dense ids are capped below u32::MAX and the
                    // adversary fan-out bound is validated to fit 32
                    // bits, so the key packs (dense source, edge index)
                    // exactly — and stays strictly increasing in stream
                    // order, the property dense numbering rests on.
                    rec.keys.push(((u as u64) << 32) | u64::from(edge_k));
                    rec.fps.push(fp);
                    rec.words.extend_from_slice(words);
                    rec.aux.extend_from_slice(aux);
                    edge_k += 1;
                },
            )?;
            emitted += edge_k as usize;
        }
        Ok(ChunkOut { emitted, shards })
    }

    /// Enumerates the successors of dense state `u` in activation-set
    /// order, then adversary-choice order within each activation set —
    /// the canonical edge order, identical for every phase that
    /// regenerates edges — invoking
    /// `emit(words, aux, mask, interesting, elem, choice)` with the
    /// packed successor row, its auxiliary output row, the activation
    /// mask, whether the correct-node labeling (or the tracked outputs)
    /// changed along the edge, the index of the group element that
    /// canonicalized the successor (0 — the identity — whenever symmetry
    /// is off), and the adversary-choice code. The code is a base-`|Σ|`
    /// number whose digits, least-significant first, are the labels the
    /// activated Byzantine nodes write on their out-edges (ascending
    /// node id, `out_edges` order); fault-free states emit exactly one
    /// choice, code `0` — bit-for-bit the pre-fault behavior. Under
    /// quotient exploration the emitted row is the successor's **orbit
    /// representative**; mask, `interesting`, and `choice` stay in the
    /// source state's frame. Allocation-free per edge given a
    /// warm `scratch`; the only error is a reaction emitting a label
    /// outside the declared alphabet, which exploration surfaces as
    /// [`VerifyError::BadParameters`] (post-exploration regeneration can
    /// therefore never hit it).
    fn for_each_successor<F>(
        &self,
        guards: &[RwLockReadGuard<'_, StateShard>],
        u: usize,
        scratch: &mut ExpandScratch<L>,
        mut emit: F,
    ) -> Result<(), VerifyError>
    where
        F: FnMut(&[u64], &[u64], u32, bool, u32, u64),
    {
        let cfg = &self.cfg;
        let (n, e) = (cfg.n, cfg.e);
        let (lw, cw) = (cfg.label_width, cfg.countdown_width);
        let sc = scratch;
        // Decode the source state from its shard arena.
        let (s, local) = unpack_state_id(self.dense_ids[u]);
        {
            let row = guards[s].row(local);
            sc.labeling.clear();
            for (k, idx) in sc.label_idx.iter_mut().enumerate() {
                let v = unpack(row, k * lw as usize, lw) as u32;
                *idx = v;
                sc.labeling.push(cfg.alphabet[v as usize].clone());
            }
            for (i, cd) in sc.countdown.iter_mut().enumerate() {
                *cd = unpack(row, e * lw as usize + i * cw as usize, cw) as u8 + 1;
            }
            if cfg.track_outputs {
                sc.out_words.copy_from_slice(guards[s].aux_row(local));
            }
        }
        let forced: u32 = (0..n)
            .filter(|&i| sc.countdown[i] == 1)
            .map(|i| 1 << i)
            .sum();
        sc.free_nodes.clear();
        sc.free_nodes
            .extend((0..n).filter(|&i| sc.countdown[i] != 1));
        let graph = cfg.protocol.graph();
        // Every activation set: forced nodes plus any subset of the
        // rest (skipping the empty total set).
        for subset in 0..(1u32 << sc.free_nodes.len()) {
            let mut mask = forced;
            for (k, &i) in sc.free_nodes.iter().enumerate() {
                if subset >> k & 1 == 1 {
                    mask |= 1 << i;
                }
            }
            if mask == 0 {
                continue;
            }
            sc.next_label_idx.copy_from_slice(&sc.label_idx);
            if cfg.track_outputs {
                sc.next_out_words.copy_from_slice(&sc.out_words);
            }
            sc.byz_edges.clear();
            for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                if cfg.faults.is_faulty(i) {
                    // Crash: the activation commits nothing. Byzantine:
                    // the out-labels are set per adversary branch below.
                    // Either way the tracked output stays frozen — it is
                    // 0 in the seeds and never written, so faulty output
                    // slots are 0 in every reachable state.
                    if cfg.faults.is_byzantine(i) {
                        sc.byz_edges.extend_from_slice(graph.out_edges(i));
                    }
                    continue;
                }
                // Buffered reaction probe: all reads come from the
                // pre-step labeling, so the per-node commits into
                // next_label_idx cannot corrupt later probes.
                let y = cfg.protocol.apply_buffered(
                    i,
                    &sc.labeling,
                    cfg.inputs[i],
                    &mut sc.in_buf,
                    &mut sc.react_buf,
                );
                for (slot, &eid) in sc.react_buf.iter().zip(graph.out_edges(i)) {
                    let Some(&idx) = cfg.label_index.get(slot) else {
                        return Err(VerifyError::BadParameters {
                            what: format!(
                                "node {i} emitted the label {slot:?}, which is \
                                 outside the declared alphabet"
                            ),
                        });
                    };
                    sc.next_label_idx[eid] = idx;
                }
                if cfg.track_outputs {
                    sc.next_out_words[i] = y;
                }
            }
            // One branch per adversary choice: a base-|Σ| code whose
            // digits (LSD first) are the labels the activated Byzantine
            // nodes write, in `byz_edges` order. Fault-free runs take
            // exactly one iteration with choice 0 and no digit writes.
            let q = cfg.alphabet.len() as u64;
            let n_choices = q.pow(sc.byz_edges.len() as u32);
            for choice in 0..n_choices {
                let mut digits = choice;
                for &eid in &sc.byz_edges {
                    sc.next_label_idx[eid] = (digits % q) as u32;
                    digits /= q;
                }
                let interesting = if cfg.track_outputs {
                    // Faulty output slots are 0 on both sides, so the
                    // full-row comparison only ever sees correct nodes.
                    sc.next_out_words != sc.out_words
                } else if cfg.faults.has_faults() {
                    // Byzantine-sourced labels flip freely, so label
                    // stabilization is judged on correct-sourced edges.
                    cfg.correct_src_edges
                        .iter()
                        .any(|&k| sc.next_label_idx[k] != sc.label_idx[k])
                } else {
                    sc.next_label_idx != sc.label_idx
                };
                // Pack the successor: labels, then countdowns (reset to
                // r for activated nodes, decremented otherwise).
                sc.state.fill(0);
                for (k, &idx) in sc.next_label_idx.iter().enumerate() {
                    pack(&mut sc.state, k * lw as usize, lw, u64::from(idx));
                }
                for (i, &cd_now) in sc.countdown.iter().enumerate() {
                    let cd = if mask >> i & 1 == 1 {
                        cfg.r
                    } else {
                        cd_now - 1
                    };
                    pack(
                        &mut sc.state,
                        e * lw as usize + i * cw as usize,
                        cw,
                        u64::from(cd - 1),
                    );
                }
                // Quotient step: rewrite the successor to its orbit
                // representative (a pure function of the packed row, so
                // the determinism contract is untouched) and remember
                // which element did it — witness reconstruction
                // de-canonicalizes with it. Canonicalization permutes
                // the aux row in place, and the same `next_out_words`
                // feeds every adversary branch of this activation set,
                // so it is copied into `canon_aux` first.
                let mut elem = 0u32;
                if let Some(sym) = &cfg.symmetry {
                    sc.canon_aux.copy_from_slice(&sc.next_out_words);
                    elem = sym.canonicalize(
                        &cfg.layout,
                        &mut sc.state,
                        &mut sc.canon_aux,
                        &mut sc.canon,
                    ) as u32;
                    emit(&sc.state, &sc.canon_aux, mask, interesting, elem, choice);
                } else {
                    emit(
                        &sc.state,
                        &sc.next_out_words,
                        mask,
                        interesting,
                        elem,
                        choice,
                    );
                }
            }
        }
        Ok(())
    }

    /// Regenerates and resolves the outgoing edges of dense state `u`:
    /// every successor is packed, fingerprinted, and looked up read-only
    /// in its shard ([`StateShard::lookup`] — exploration interned all
    /// of them), then mapped to its dense id. `out` is overwritten with
    /// `(dense target, activation mask, interesting, canonicalizing
    /// element, adversary choice)` in the canonical edge order.
    fn successors_resolved(
        &self,
        guards: &[RwLockReadGuard<'_, StateShard>],
        u: usize,
        scratch: &mut ExpandScratch<L>,
        out: &mut Vec<(u32, u32, bool, u32, u64)>,
    ) {
        out.clear();
        self.for_each_successor(
            guards,
            u,
            scratch,
            |words, aux, mask, interesting, elem, choice| {
                let fp = fingerprint(words, aux);
                let s = shard_of(fp);
                let local = guards[s]
                    .lookup(fp, words, aux)
                    .expect("every successor was interned during exploration");
                out.push((guards[s].dense_of(local), mask, interesting, elem, choice));
            },
        )
        .expect("alphabet closure was validated during exploration");
    }

    /// Phase 2: replays shard `s`'s record stream — chunks in order,
    /// records in order — against its fingerprint index. Exactly one
    /// worker claims each shard, so interning is single-writer and the
    /// local id sequence is deterministic.
    fn intern_shard(&self, s: usize, chunks: &[ChunkOut]) -> ShardIntern {
        let (w, al) = (self.cfg.words_per_state, self.cfg.aux_len);
        let mut shard = self.index.write(s);
        let mut out = ShardIntern { fresh: Vec::new() };
        for chunk in chunks {
            let rec = &chunk.shards[s];
            for (i, &fp) in rec.fps.iter().enumerate() {
                let row = &rec.words[i * w..(i + 1) * w];
                let aux = &rec.aux[i * al..(i + 1) * al];
                let (local, fresh) = shard.intern(fp, row, aux);
                if fresh {
                    out.fresh
                        .push((rec.keys[i], local, self.cfg.free_count(row)));
                }
            }
        }
        out
    }

    /// Phase 3a: merges every shard's fresh states by stream key — the
    /// position of the edge (or seed labeling) that first discovered them
    /// — and assigns dense ids in that order. This is exactly the order a
    /// sequential scan interns in, so dense numbering is identical for
    /// every thread count.
    fn assign_dense(
        &mut self,
        interned: &[ShardIntern],
        limits: &Limits,
    ) -> Result<(), VerifyError> {
        let cap = limits.max_states.min(u32::MAX as usize - 1);
        let mut guards: Vec<_> = (0..SHARD_COUNT).map(|s| self.index.write(s)).collect();
        let mut heads: BinaryHeap<Reverse<(u64, usize)>> = interned
            .iter()
            .enumerate()
            .filter(|(_, si)| !si.fresh.is_empty())
            .map(|(s, si)| Reverse((si.fresh[0].0, s)))
            .collect();
        let mut pos = [0usize; SHARD_COUNT];
        while let Some(Reverse((_, s))) = heads.pop() {
            let (_, local, free) = interned[s].fresh[pos[s]];
            if self.n_states >= cap {
                return Err(VerifyError::TooManyStates {
                    limit: limits.max_states,
                });
            }
            guards[s].push_dense(self.n_states as u32);
            self.dense_ids.push(pack_state_id(s, local));
            self.free_bits.push(free);
            self.n_states += 1;
            pos[s] += 1;
            if let Some(&(key, _, _)) = interned[s].fresh.get(pos[s]) {
                heads.push(Reverse((key, s)));
            }
        }
        Ok(())
    }

    /// Condenses the explored product graph **without materializing
    /// it**: a [`ProductOracle`] regenerates successors on demand for
    /// the parallel trim + Forward–Backward engine of
    /// [`stateless_core::scc`] on [`Limits::threads`] workers, or for
    /// the serial Tarjan reference — both in the canonical numbering,
    /// so the choice (and the thread count) never changes a verdict or
    /// a witness.
    fn sccs(&self, backend: SccBackend) -> Vec<u32> {
        self.sccs_with_threads(backend, self.cfg.threads)
    }

    /// [`Explorer::sccs`] at an explicit worker count — the
    /// SCC-isolation bench hook.
    fn sccs_with_threads(&self, backend: SccBackend, threads: usize) -> Vec<u32> {
        let oracle = ProductOracle::new(self);
        match backend {
            SccBackend::ForwardBackward => scc::condense_oracle(&oracle, threads),
            SccBackend::Tarjan => scc::tarjan_oracle(&oracle),
        }
    }

    /// Finds a cycle through an "interesting" intra-SCC edge, as a
    /// witness. The *first* such edge suffices — its endpoints share an
    /// SCC, so the closing path always exists and one BFS settles the
    /// whole component. The BFS needs repeated edge access over that one
    /// component, so the verdict SCC — and only it — is re-expanded into
    /// a small **transient** CSR (component-local targets + activation
    /// masks + canonicalizing elements), discarded when the witness is
    /// built; its size is folded into the [`ExploreStats::edge_bytes`]
    /// peak.
    ///
    /// Under quotient exploration the cycle found here lives in the
    /// **quotient** graph, so it is de-canonicalized before being
    /// returned (see the module docs' symmetry section): walking the
    /// quotient cycle with an accumulated group element `c` (masks map
    /// through `c`, then `c ← c ∘ h⁻¹` for the edge's canonicalizing
    /// element `h`) and unrolling laps until `c` is the identity again
    /// yields a concrete cycle of the unquotiented system, starting at
    /// the decoded (canonical) entry labeling.
    fn witness(&self, comp: &[u32]) -> Option<CycleWitness<L>> {
        let (u, v, mask, elem, choice) = self.first_interesting_intra_scc_edge(comp)?;
        // Re-expand the verdict component into local-id CSR arrays.
        let cid = comp[u];
        let members: Vec<u32> = (0..self.n_states as u32)
            .filter(|&x| comp[x as usize] == cid)
            .collect();
        let mut local_of: Vec<u32> = vec![u32::MAX; self.n_states];
        for (i, &x) in members.iter().enumerate() {
            local_of[x as usize] = i as u32;
        }
        let guards = self.index.read_all();
        let mut scratch = ExpandScratch::new(&self.cfg);
        let mut edges: Vec<(u32, u32, bool, u32, u64)> = Vec::new();
        let mut offsets: Vec<usize> = Vec::with_capacity(members.len() + 1);
        offsets.push(0);
        let mut targets: Vec<u32> = Vec::new();
        let mut masks: Vec<u32> = Vec::new();
        let mut elems: Vec<u32> = Vec::new();
        let mut choices: Vec<u64> = Vec::new();
        for &x in &members {
            self.successors_resolved(&guards, x as usize, &mut scratch, &mut edges);
            for &(t, m, _, h, c) in &edges {
                if comp[t as usize] == cid {
                    targets.push(local_of[t as usize]);
                    masks.push(m);
                    elems.push(h);
                    choices.push(c);
                }
            }
            offsets.push(targets.len());
        }
        self.note_transient_bytes(
            offsets.len() * std::mem::size_of::<usize>()
                + targets.len() * 4
                + masks.len() * 4
                + elems.len() * 4
                + choices.len() * 8,
        );
        let (lu, lv) = (local_of[u] as usize, local_of[v] as usize);
        let m = members.len();
        let mut prev: Vec<u32> = vec![u32::MAX; m];
        let mut prev_mask: Vec<u32> = vec![0; m];
        let mut prev_elem: Vec<u32> = vec![0; m];
        let mut prev_choice: Vec<u64> = vec![0; m];
        let mut queue: VecDeque<u32> = VecDeque::new();
        // BFS from v back to u inside the component.
        queue.push_back(lv as u32);
        let mut found = lv == lu;
        'bfs: while let Some(w) = queue.pop_front() {
            let wu = w as usize;
            for c in offsets[wu]..offsets[wu + 1] {
                let x = targets[c] as usize;
                if x != lv && prev[x] == u32::MAX {
                    prev[x] = w;
                    prev_mask[x] = masks[c];
                    prev_elem[x] = elems[c];
                    prev_choice[x] = choices[c];
                    if x == lu {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(x as u32);
                }
            }
        }
        debug_assert!(found, "u and v share an SCC, so v reaches u");
        if !found {
            return None;
        }
        // Reconstruct the quotient cycle u →(mask, elem, choice) v → …
        // → u in forward order.
        let mut quot = vec![(mask, elem, choice)];
        let mut path_rev = Vec::new();
        let mut at = lu;
        while at != lv {
            path_rev.push((prev_mask[at], prev_elem[at], prev_choice[at]));
            at = prev[at] as usize;
        }
        quot.extend(path_rev.into_iter().rev());
        let n = self.cfg.n;
        let graph = self.cfg.protocol.graph();
        let ident = Automorphism::identity(n, self.cfg.e);
        let mut sched_masks: Vec<u32> = Vec::with_capacity(quot.len());
        let mut adversary: Vec<Vec<(NodeId, Vec<L>)>> = Vec::with_capacity(quot.len());
        match &self.cfg.symmetry {
            None => {
                for &(m, _, c) in &quot {
                    sched_masks.push(m);
                    adversary.push(decode_adversary(
                        graph,
                        self.cfg.faults,
                        &self.cfg.alphabet,
                        m,
                        c,
                        &ident,
                    ));
                }
            }
            Some(sym) => {
                // De-canonicalize: the concrete state after t quotient
                // steps is `c · v_t`; each lap multiplies `c` by a fixed
                // group element, so at most `|G|` laps close the
                // concrete cycle. The coloring-restricted group maps
                // Byzantine nodes to Byzantine nodes, so the adversary
                // decode holds in the concrete frame too.
                let els = sym.elements();
                let mut acc = ident;
                loop {
                    for &(m, h, c) in &quot {
                        sched_masks.push(acc.apply_mask(m));
                        adversary.push(decode_adversary(
                            graph,
                            self.cfg.faults,
                            &self.cfg.alphabet,
                            m,
                            c,
                            &acc,
                        ));
                        acc = acc.compose(&els[h as usize].inverse());
                    }
                    if acc.is_identity() {
                        break;
                    }
                }
            }
        }
        let schedule = sched_masks
            .into_iter()
            .map(|m| (0..n).filter(|&i| m >> i & 1 == 1).collect())
            .collect();
        Some(CycleWitness {
            labeling: self.decode_labeling(u),
            schedule,
            adversary,
        })
    }

    /// Finds the first (in canonical edge order — ascending source
    /// state, then activation-set order) labeling/output-changing edge
    /// whose endpoints share a component, regenerating each state's
    /// edges on the fly. The scan is chunked over fixed state ranges and
    /// the chunks run on [`Limits::threads`] workers; taking the
    /// earliest non-empty chunk reproduces the serial scan's answer
    /// exactly (chunk boundaries are constants, never derived from the
    /// thread count), and a shared low-water mark lets workers skip
    /// chunks that can no longer win.
    fn first_interesting_intra_scc_edge(
        &self,
        comp: &[u32],
    ) -> Option<(usize, usize, u32, u32, u64)> {
        let chunks = self.n_states.div_ceil(SCAN_CHUNK_STATES);
        let best = AtomicUsize::new(usize::MAX);
        let guards = self.index.read_all();
        let scan = |c: usize| -> Option<(usize, usize, u32, u32, u64)> {
            if c > best.load(Ordering::Relaxed) {
                return None;
            }
            let start = c * SCAN_CHUNK_STATES;
            let end = (start + SCAN_CHUNK_STATES).min(self.n_states);
            let mut scratch = ExpandScratch::new(&self.cfg);
            let mut edges: Vec<(u32, u32, bool, u32, u64)> = Vec::new();
            for u in start..end {
                self.successors_resolved(&guards, u, &mut scratch, &mut edges);
                for &(v, mask, interesting, elem, choice) in &edges {
                    if interesting && comp[u] == comp[v as usize] {
                        best.fetch_min(c, Ordering::Relaxed);
                        return Some((u, v as usize, mask, elem, choice));
                    }
                }
            }
            None
        };
        run_indexed(self.cfg.threads.min(chunks), chunks, scan)
            .into_iter()
            .flatten()
            .next()
    }

    /// Decodes state `u`'s labeling from its shard arena.
    fn decode_labeling(&self, u: usize) -> Vec<L> {
        let (s, local) = unpack_state_id(self.dense_ids[u]);
        let shard = self.index.read(s);
        let row = shard.row(local);
        let lw = self.cfg.label_width;
        (0..self.cfg.e)
            .map(|k| self.cfg.alphabet[unpack(row, k * lw as usize, lw) as usize].clone())
            .collect()
    }

    fn stats(&self) -> ExploreStats {
        ExploreStats {
            states: self.n_states,
            edges: self.n_edges,
            words_per_state: self.cfg.words_per_state,
            state_bytes: self.n_states * (self.cfg.words_per_state + self.cfg.aux_len) * 8,
            edge_bytes: self.peak_edge_bytes.load(Ordering::Relaxed),
        }
    }

    /// Materializes the full CSR adjacency by regenerating every edge —
    /// O(edges) memory by definition, so this is strictly a test/bench
    /// hook (the SCC-isolation rows, the differential suites), never
    /// part of verification.
    fn materialize_csr(&self) -> (Vec<usize>, Vec<u32>) {
        let guards = self.index.read_all();
        let mut scratch = ExpandScratch::new(&self.cfg);
        let mut edges: Vec<(u32, u32, bool, u32, u64)> = Vec::new();
        let mut offsets: Vec<usize> = Vec::with_capacity(self.n_states + 1);
        offsets.push(0);
        let mut targets: Vec<u32> = Vec::new();
        for u in 0..self.n_states {
            self.successors_resolved(&guards, u, &mut scratch, &mut edges);
            targets.extend(edges.iter().map(|&(v, _, _, _, _)| v));
            offsets.push(targets.len());
        }
        (offsets, targets)
    }
}

/// Reconstructs the adversary's concrete writes along one product edge
/// from its `(mask, choice)` tag: for every activated Byzantine node
/// (ascending quotient-frame id) the base-`|Σ|` digits of `choice` name,
/// least-significant first, the labels written on its out-edges in
/// `out_edges` order — the exact encoding of
/// [`Explorer::for_each_successor`]. `acc` maps the quotient frame into
/// the concrete frame (pass the identity when symmetry is off): digit
/// `(i, s)` lands on the concrete edge `acc.edge_perm[out_edges(i)[s]]`,
/// reported at that edge's slot within the concrete node's own
/// `out_edges` — the shape [`Simulation::step_with_adversary`] replays.
fn decode_adversary<L: Label>(
    graph: &DiGraph,
    faults: FaultModel,
    alphabet: &[L],
    mask: u32,
    choice: u64,
    acc: &Automorphism,
) -> Vec<(NodeId, Vec<L>)> {
    let q = alphabet.len() as u64;
    let mut digits = choice;
    let mut out: Vec<(NodeId, Vec<L>)> = Vec::new();
    for i in 0..graph.node_count() {
        if mask >> i & 1 == 0 || !faults.is_byzantine(i) {
            continue;
        }
        let node = acc.node_perm[i] as NodeId;
        let slots = graph.out_edges(node);
        let mut labels = vec![alphabet[0].clone(); slots.len()];
        for &eid in graph.out_edges(i) {
            let concrete = acc.edge_perm[eid] as EdgeId;
            let slot = slots
                .iter()
                .position(|&k| k == concrete)
                .expect("automorphisms map out-edges to out-edges");
            labels[slot] = alphabet[(digits % q) as usize].clone();
            digits /= q;
        }
        out.push((node, labels));
    }
    out.sort_by_key(|&(node, _)| node);
    out
}

/// One checkout of oracle scratch: expansion state plus a resolved
/// `(target, mask, interesting, element, choice)` edge buffer.
type OracleScratch<L> = (ExpandScratch<L>, Vec<(u32, u32, bool, u32, u64)>);

/// Stripes of the oracle scratch cache. Workers hash their thread id
/// into a stripe, so with ≤ 64 SCC workers the stripes are effectively
/// thread-local: a single shared `Mutex<Vec<_>>` (the PR 6 shape) was
/// acquired **twice per successor query** from every worker and
/// serialized the whole oracle-SCC phase — the t=2/4 regression in the
/// engine bench.
const ORACLE_SCRATCH_STRIPES: usize = 64;

/// The verifier's [`scc::SuccessorOracle`]: shared read guards over the
/// shard arenas plus striped per-worker scratch buffers. A successor
/// query regenerates the state's edges via
/// [`Explorer::successors_resolved`] and strips them to dense target
/// ids — the SCC engine never sees (and the process never stores) a
/// full-graph edge array. Under quotient exploration the regenerated
/// successors are re-canonicalized by `successors_resolved` itself, so
/// the oracle serves exactly the interned quotient graph.
struct ProductOracle<'e, 'p, L: Label> {
    ex: &'e Explorer<'p, L>,
    guards: Vec<RwLockReadGuard<'e, StateShard>>,
    /// Checked-out/returned scratch, striped by worker thread id so
    /// concurrent queries never contend; each lock is held only for the
    /// pop/push, never across a query.
    stripes: Vec<Mutex<Vec<OracleScratch<L>>>>,
}

impl<'e, 'p, L: Label> ProductOracle<'e, 'p, L> {
    fn new(ex: &'e Explorer<'p, L>) -> Self {
        ProductOracle {
            ex,
            guards: ex.index.read_all(),
            stripes: (0..ORACLE_SCRATCH_STRIPES)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// This worker's scratch stripe (the vendored rayon spawns plain OS
    /// threads, so the thread id is stable per worker).
    fn stripe(&self) -> &Mutex<Vec<OracleScratch<L>>> {
        use std::hash::Hash;
        let mut h = FxHasher::default();
        std::thread::current().id().hash(&mut h);
        &self.stripes[h.finish() as usize % ORACLE_SCRATCH_STRIPES]
    }
}

impl<L: Label> scc::SuccessorOracle for ProductOracle<'_, '_, L> {
    fn state_count(&self) -> usize {
        self.ex.n_states
    }

    fn successors(&self, u: u32, out: &mut Vec<u32>) {
        let stripe = self.stripe();
        let (mut scratch, mut edges) = stripe
            .lock()
            .expect("oracle scratch stripe poisoned")
            .pop()
            .unwrap_or_else(|| (ExpandScratch::new(&self.ex.cfg), Vec::new()));
        self.ex
            .successors_resolved(&self.guards, u as usize, &mut scratch, &mut edges);
        out.clear();
        out.extend(edges.iter().map(|&(v, _, _, _, _)| v));
        stripe
            .lock()
            .expect("oracle scratch stripe poisoned")
            .push((scratch, edges));
    }
}

/// Decides **label** r-stabilization of `protocol` under the given inputs,
/// exactly, by exploring the full product graph over `alphabet`-labelings.
///
/// `alphabet` must be closed under the reactions; a reaction emitting a
/// label outside it is reported as [`VerifyError::BadParameters`].
///
/// See the [module docs](self) for the memory model (packed states,
/// sharded fingerprint interning, CSR edges, Tarjan SCC) and the
/// determinism contract of the parallel explorer ([`Limits::threads`]).
///
/// # Errors
///
/// [`VerifyError::TooManyStates`] / [`VerifyError::TooManyEdges`] if the
/// product graph exceeds the limits; [`VerifyError::BadParameters`] for
/// `r = 0`, oversized graphs, or a non-closed alphabet.
pub fn verify_label_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    verify_label_stabilization_with_stats(protocol, inputs, alphabet, r, limits).map(|(v, _)| v)
}

/// [`verify_label_stabilization`], also reporting the size of the explored
/// product graph ([`ExploreStats`]) — the figures behind the
/// `verify_scaling` perf section.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_label_stabilization_with_stats<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    let explored = Explorer::explore(protocol, inputs, alphabet, r, false, &limits)?;
    Ok(settle(explored, &limits))
}

/// Turns a batch-loop outcome into a verdict: condense + witness on a
/// complete exploration, [`Verdict::Partial`] on a deadline-truncated
/// one. Shared by every entry point (fresh and resumed, label and
/// output mode).
fn settle<L: Label>(explored: Explored<'_, L>, limits: &Limits) -> (Verdict<L>, ExploreStats) {
    match explored {
        Explored::Complete(ex) => {
            let comp = ex.sccs(limits.scc);
            let verdict = match ex.witness(&comp) {
                Some(w) => Verdict::NotStabilizing(w),
                None => Verdict::Stabilizing,
            };
            (verdict, ex.stats())
        }
        Explored::Partial {
            ex,
            cursor,
            checkpoint,
        } => {
            let verdict = Verdict::Partial {
                states_explored: ex.n_states,
                frontier_len: ex.n_states - cursor,
                checkpoint,
            };
            (verdict, ex.stats())
        }
    }
}

/// Resumes a **label**-stabilization verification from the newest valid
/// checkpoint epoch in `dir` (see [`CheckpointPolicy`]) and drives it to
/// a verdict. Pass the *same* protocol, inputs, alphabet, `r`, and
/// instance-shaping limits (fault model, symmetry mode, state/edge
/// budgets) as the original run: the checkpoint's stored instance
/// fingerprint is verified first and a mismatch is the typed
/// [`ResumeError::InstanceMismatch`] — never a silently wrong verdict.
/// `limits.threads` and `limits.scc` may freely differ: the resumed
/// verdict, state ids, and witness are bit-identical to an
/// uninterrupted run at any thread count, with either backend.
///
/// # Errors
///
/// [`VerifyError::Resume`] if the store holds no valid epoch, the epoch
/// is corrupt, or the instance fingerprint mismatches; otherwise as for
/// [`verify_label_stabilization`].
pub fn verify_label_stabilization_resumed<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    dir: &Path,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    verify_label_stabilization_resumed_at(protocol, inputs, alphabet, r, limits, dir, None)
}

/// [`verify_label_stabilization_resumed`] from an explicit epoch — the
/// resume-at-any-epoch test hook.
///
/// # Errors
///
/// As for [`verify_label_stabilization_resumed`].
#[doc(hidden)]
pub fn verify_label_stabilization_resumed_at<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    dir: &Path,
    epoch: Option<u64>,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    let (ex, cursor) = Explorer::resume(protocol, inputs, alphabet, r, false, &limits, dir, epoch)?;
    let explored = ex.run(cursor, &limits)?;
    Ok(settle(explored, &limits))
}

/// Resumes an **output**-stabilization verification from the newest
/// valid checkpoint epoch in `dir`; see
/// [`verify_label_stabilization_resumed`] for the matching rules.
///
/// # Errors
///
/// As for [`verify_label_stabilization_resumed`].
pub fn verify_output_stabilization_resumed<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    dir: &Path,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    verify_output_stabilization_resumed_at(protocol, inputs, alphabet, r, limits, dir, None)
}

/// [`verify_output_stabilization_resumed`] from an explicit epoch.
///
/// # Errors
///
/// As for [`verify_label_stabilization_resumed`].
#[doc(hidden)]
pub fn verify_output_stabilization_resumed_at<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    dir: &Path,
    epoch: Option<u64>,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    let (ex, cursor) = Explorer::resume(protocol, inputs, alphabet, r, true, &limits, dir, epoch)?;
    let explored = ex.run(cursor, &limits)?;
    Ok(settle(explored, &limits))
}

/// An explored **label**-stabilization product graph, held open for
/// repeated SCC condensation — the hook the `verify_scaling` perf rows
/// use to time the SCC phase in isolation, per thread count and
/// backend, on the real graph without re-exploring it each time.
#[doc(hidden)]
pub struct ExploredProduct<'p, L: Label>(Explorer<'p, L>);

/// Explores the product graph of a **label**-stabilization query and
/// returns it as an [`ExploredProduct`] handle (no verdict, no CSR).
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
#[doc(hidden)]
pub fn explore_product<'p, L: Label>(
    protocol: &'p Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<ExploredProduct<'p, L>, VerifyError> {
    match Explorer::explore(protocol, inputs, alphabet, r, false, &limits)? {
        Explored::Complete(ex) => Ok(ExploredProduct(ex)),
        Explored::Partial { .. } => Err(VerifyError::BadParameters {
            what: "explore_product cannot represent a deadline-truncated exploration; \
                   drop Limits::deadline or use verify_label_stabilization_resumed"
                .into(),
        }),
    }
}

/// Resumes a **label**-stabilization product exploration from the
/// checkpoint store at `dir` (epoch `epoch`, or the newest valid one
/// when `None`), drives it to completion, and returns the
/// [`ExploredProduct`] handle — the checkpoint-overhead perf rows and
/// the resume tests use this to inspect the resumed graph directly.
///
/// # Errors
///
/// As for [`verify_label_stabilization_resumed`]; additionally
/// [`VerifyError::BadParameters`] if a [`Limits::deadline`] truncates
/// the resumed run again (this handle cannot represent a partial graph).
#[doc(hidden)]
pub fn explore_product_resumed<'p, L: Label>(
    protocol: &'p Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    dir: &Path,
    epoch: Option<u64>,
) -> Result<ExploredProduct<'p, L>, VerifyError> {
    let (ex, cursor) = Explorer::resume(protocol, inputs, alphabet, r, false, &limits, dir, epoch)?;
    match ex.run(cursor, &limits)? {
        Explored::Complete(ex) => Ok(ExploredProduct(ex)),
        Explored::Partial { .. } => Err(VerifyError::BadParameters {
            what: "explore_product_resumed cannot represent a deadline-truncated exploration"
                .into(),
        }),
    }
}

impl<L: Label> ExploredProduct<'_, L> {
    /// Condenses via the successor oracle at an explicit worker count.
    pub fn condense(&self, backend: SccBackend, threads: usize) -> Vec<u32> {
        self.0.sccs_with_threads(backend, threads)
    }

    /// Materializes the CSR adjacency by regeneration — O(edges) memory,
    /// bench/test use only.
    pub fn csr(&self) -> (Vec<usize>, Vec<u32>) {
        self.0.materialize_csr()
    }

    /// Exploration stats ([`ExploreStats`]).
    pub fn stats(&self) -> ExploreStats {
        self.0.stats()
    }
}

/// Explores the product graph of a **label**-stabilization query and
/// returns its CSR adjacency (`edge_offsets`, `edge_targets`),
/// materialized on demand by regenerating every edge (the verifier
/// itself no longer stores one) — a differential-test adapter.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
#[doc(hidden)]
pub fn product_graph_csr<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<(Vec<usize>, Vec<u32>), VerifyError> {
    Ok(explore_product(protocol, inputs, alphabet, r, limits)?.csr())
}

/// Decides **output** r-stabilization (the weaker condition: outputs must
/// converge, labels may dance forever). Same exploration with outputs in
/// the state.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_output_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    verify_output_stabilization_with_stats(protocol, inputs, alphabet, r, limits).map(|(v, _)| v)
}

/// [`verify_output_stabilization`], also reporting the size of the
/// explored product graph — the output-mode twin of
/// [`verify_label_stabilization_with_stats`] (the verdict cache stores
/// stats for both query modes).
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_output_stabilization_with_stats<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    let explored = Explorer::explore(protocol, inputs, alphabet, r, true, &limits)?;
    Ok(settle(explored, &limits))
}

// ---------------------------------------------------------------------------
// Naive reference explorer (owned-`Vec` interning + Kosaraju), kept for
// differential testing only.
// ---------------------------------------------------------------------------

/// One product-graph vertex of the naive explorer: `(labeling, countdown,
/// outputs)` (outputs all-zero when not tracked).
type ProductState<L> = (Vec<L>, Vec<u8>, Vec<Output>);

struct NaiveExplorer<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    faults: FaultModel,
    /// Deduplicated alphabet (first occurrence wins, like the packed
    /// explorer) — the digit base of adversary-choice codes.
    alphabet: Vec<L>,
    /// Edges sourced at correct nodes; the label-mode "interesting" set
    /// when the fault model is non-trivial (empty when fault-free).
    correct_src_edges: Vec<usize>,
    index: HashMap<ProductState<L>, usize>,
    states: Vec<ProductState<L>>,
    /// edges[u] = (v, interesting: labeling/output changed, activation
    /// mask, adversary-choice code)
    edges: Vec<Vec<(usize, bool, u32, u64)>>,
    in_buf: Vec<L>,
    out_buf: Vec<L>,
}

impl<'p, L: Label> NaiveExplorer<'p, L> {
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
    ) -> Result<Self, VerifyError> {
        limits.validate()?;
        let n = protocol.node_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        limits
            .faults
            .validate(n)
            .map_err(|e| VerifyError::BadParameters {
                what: e.to_string(),
            })?;
        let mut dedup: Vec<L> = Vec::with_capacity(alphabet.len());
        for l in alphabet {
            if !dedup.contains(l) {
                dedup.push(l.clone());
            }
        }
        let correct_src_edges: Vec<usize> = if limits.faults.has_faults() {
            protocol
                .graph()
                .edges()
                .filter(|&(_, u, _)| !limits.faults.is_faulty(u))
                .map(|(id, _, _)| id)
                .collect()
        } else {
            Vec::new()
        };
        let mut ex = NaiveExplorer {
            protocol,
            inputs: inputs.to_vec(),
            r,
            track_outputs,
            faults: limits.faults,
            alphabet: dedup,
            correct_src_edges,
            index: HashMap::new(),
            states: Vec::new(),
            edges: Vec::new(),
            in_buf: Vec::new(),
            out_buf: Vec::new(),
        };
        for labeling in all_labelings(alphabet, protocol.edge_count()) {
            let state = (labeling, vec![r; n], vec![0; n]);
            ex.intern(state, limits)?;
        }
        let mut cursor = 0;
        while cursor < ex.states.len() {
            ex.expand(cursor, limits)?;
            cursor += 1;
        }
        Ok(ex)
    }

    fn intern(&mut self, state: ProductState<L>, limits: &Limits) -> Result<usize, VerifyError> {
        if let Some(&id) = self.index.get(&state) {
            return Ok(id);
        }
        if self.states.len() >= limits.max_states {
            return Err(VerifyError::TooManyStates {
                limit: limits.max_states,
            });
        }
        let id = self.states.len();
        self.index.insert(state.clone(), id);
        self.states.push(state);
        self.edges.push(Vec::new());
        Ok(id)
    }

    fn expand(&mut self, u: usize, limits: &Limits) -> Result<(), VerifyError> {
        let n = self.protocol.node_count();
        let (labeling, countdown, outputs) = self.states[u].clone();
        let forced: u32 = (0..n).filter(|&i| countdown[i] == 1).map(|i| 1 << i).sum();
        let free: Vec<usize> = (0..n).filter(|&i| countdown[i] != 1).collect();
        for subset in 0..(1u32 << free.len()) {
            let mut mask = forced;
            for (k, &i) in free.iter().enumerate() {
                if subset >> k & 1 == 1 {
                    mask |= 1 << i;
                }
            }
            if mask == 0 {
                continue;
            }
            let mut next_labeling = labeling.clone();
            let mut next_outputs = outputs.clone();
            let graph = self.protocol.graph();
            let mut byz_edges: Vec<usize> = Vec::new();
            for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                if self.faults.is_faulty(i) {
                    // Crash: no writes. Byzantine: set per choice below.
                    // Faulty outputs stay frozen at 0 either way.
                    if self.faults.is_byzantine(i) {
                        byz_edges.extend_from_slice(graph.out_edges(i));
                    }
                    continue;
                }
                let y = self.protocol.apply_buffered(
                    i,
                    &labeling,
                    self.inputs[i],
                    &mut self.in_buf,
                    &mut self.out_buf,
                );
                for (slot, &e) in self.out_buf.iter().zip(graph.out_edges(i)) {
                    next_labeling[e] = slot.clone();
                }
                next_outputs[i] = y;
            }
            let next_countdown: Vec<u8> = (0..n)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        self.r
                    } else {
                        countdown[i] - 1
                    }
                })
                .collect();
            // Same digit encoding as the packed explorer: base-|Σ|,
            // least-significant digit first over byz_edges.
            let q = self.alphabet.len() as u64;
            let n_choices = q.pow(byz_edges.len() as u32);
            for choice in 0..n_choices {
                let mut digits = choice;
                for &e in &byz_edges {
                    next_labeling[e] = self.alphabet[(digits % q) as usize].clone();
                    digits /= q;
                }
                let interesting = if self.track_outputs {
                    next_outputs != outputs
                } else if self.faults.has_faults() {
                    self.correct_src_edges
                        .iter()
                        .any(|&k| next_labeling[k] != labeling[k])
                } else {
                    next_labeling != labeling
                };
                let mut state_outputs = next_outputs.clone();
                if !self.track_outputs {
                    state_outputs = vec![0; n]; // outputs not part of the state
                }
                let v = self.intern(
                    (next_labeling.clone(), next_countdown.clone(), state_outputs),
                    limits,
                )?;
                self.edges[u].push((v, interesting, mask, choice));
            }
        }
        Ok(())
    }

    /// Kosaraju SCC; returns the component id per state.
    fn sccs(&self) -> Vec<usize> {
        let n = self.states.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            seen[start] = true;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < self.edges[u].len() {
                    let v = self.edges[u][*next].0;
                    *next += 1;
                    if !seen[v] {
                        seen[v] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, _, _, _) in outs {
                redges[v].push(u);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(u) = stack.pop() {
                for &v in &redges[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = c;
                        stack.push(v);
                    }
                }
            }
            c += 1;
        }
        comp
    }

    fn witness(&self, comp: &[usize]) -> Option<CycleWitness<L>> {
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, interesting, mask, choice) in outs {
                if !interesting || comp[u] != comp[v] {
                    continue;
                }
                let mut prev: HashMap<usize, (usize, u32, u64)> = HashMap::new();
                let mut queue = VecDeque::from([v]);
                let mut found = v == u;
                while let Some(w) = queue.pop_front() {
                    if found {
                        break;
                    }
                    for &(x, _, m, c) in &self.edges[w] {
                        if comp[x] == comp[u] && x != v && !prev.contains_key(&x) {
                            prev.insert(x, (w, m, c));
                            if x == u {
                                found = true;
                                break;
                            }
                            queue.push_back(x);
                        }
                    }
                }
                if !found && v != u {
                    continue;
                }
                let mut steps = vec![(mask, choice)];
                let mut path_rev = Vec::new();
                let mut at = u;
                while at != v {
                    let &(p, m, c) = prev.get(&at).expect("BFS reached u");
                    path_rev.push((m, c));
                    at = p;
                }
                steps.extend(path_rev.into_iter().rev());
                let n = self.protocol.node_count();
                let graph = self.protocol.graph();
                let ident = Automorphism::identity(n, graph.edge_count());
                let adversary = steps
                    .iter()
                    .map(|&(m, c)| {
                        decode_adversary(graph, self.faults, &self.alphabet, m, c, &ident)
                    })
                    .collect();
                let schedule = steps
                    .into_iter()
                    .map(|(m, _)| (0..n).filter(|&i| m >> i & 1 == 1).collect())
                    .collect();
                return Some(CycleWitness {
                    labeling: self.states[u].0.clone(),
                    schedule,
                    adversary,
                });
            }
        }
        None
    }
}

/// Reference implementation of [`verify_label_stabilization`]: the
/// original explorer interning owned `(Vec<L>, Vec<u8>, Vec<Output>)`
/// states in a `HashMap` and running Kosaraju over `Vec<Vec<…>>` edges.
/// Kept for differential testing and as the baseline in the
/// `verify_scaling` perf section; the two must agree on every verdict.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
#[doc(hidden)]
pub fn verify_label_stabilization_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = NaiveExplorer::explore(protocol, inputs, alphabet, r, false, &limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

/// Reference implementation of [`verify_output_stabilization`]; see
/// [`verify_label_stabilization_naive`].
///
/// # Errors
///
/// As for [`verify_output_stabilization`].
#[doc(hidden)]
pub fn verify_output_stabilization_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = NaiveExplorer::explore(protocol, inputs, alphabet, r, true, &limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::reaction::{ConstReaction, FnReaction};

    fn rotate_ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 42)))
            .build()
            .unwrap()
    }

    #[test]
    fn constant_protocol_is_stabilizing_for_all_r() {
        let p = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3 {
            let v = verify_label_stabilization(&p, &[0; 3], &[false, true], r, Limits::default())
                .unwrap();
            assert!(v.is_stabilizing(), "r = {r}");
        }
    }

    #[test]
    fn rotation_is_not_label_stabilizing_but_output_stabilizes() {
        let p = rotate_ring(3);
        let label =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        match label {
            Verdict::NotStabilizing(w) => {
                assert!(!w.schedule.is_empty());
            }
            Verdict::Stabilizing => panic!("rotation never label-stabilizes"),
            Verdict::Partial { .. } => panic!("no deadline was set, so no partial verdict"),
        }
        let output =
            verify_output_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        assert!(output.is_stabilizing(), "constant outputs converge");
    }

    #[test]
    fn witness_schedule_really_oscillates() {
        let p = rotate_ring(3);
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 3, Limits::default()).unwrap();
        let Verdict::NotStabilizing(w) = v else {
            panic!("expected a witness")
        };
        // Replay the witness: labels must change within a few script laps
        // and the labeling must return to the start each lap (it is a
        // cycle in the product graph).
        let mut sim = Simulation::new(&p, &[0; 3], w.labeling.clone()).unwrap();
        let mut sched = Scripted::cycle(w.schedule.clone());
        sched.validate(3).expect("witness names real nodes");
        let mut changed = false;
        let mut active = Vec::new();
        for _ in 0..w.schedule.len() {
            let before = sim.labeling().to_vec();
            sched.activations_into(sim.time() + 1, 3, &mut active);
            sim.step_with(&active);
            changed |= before != sim.labeling();
        }
        assert!(changed, "labels changed along the cycle");
        assert_eq!(sim.labeling(), &w.labeling[..], "cycle closes");
    }

    #[test]
    fn limits_are_enforced() {
        let p = rotate_ring(4);
        let err = verify_label_stabilization(
            &p,
            &[0; 4],
            &[false, true],
            3,
            Limits {
                max_states: 10,
                ..Limits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::TooManyStates { limit: 10 });
    }

    #[test]
    fn edge_limits_are_enforced() {
        let p = rotate_ring(4);
        let err = verify_label_stabilization(
            &p,
            &[0; 4],
            &[false, true],
            3,
            Limits {
                max_edges: 100,
                ..Limits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::TooManyEdges { limit: 100 });
    }

    #[test]
    fn r_zero_is_rejected() {
        let p = rotate_ring(3);
        assert!(matches!(
            verify_label_stabilization(&p, &[0; 3], &[false, true], 0, Limits::default()),
            Err(VerifyError::BadParameters { .. })
        ));
    }

    #[test]
    fn non_closed_alphabet_is_rejected() {
        // The reaction emits `true`, which the declared alphabet lacks.
        let p = Protocol::builder(topology::unidirectional_ring(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, _: &[bool], _| (vec![true], 0)))
            .build()
            .unwrap();
        let err =
            verify_label_stabilization(&p, &[0; 3], &[false], 2, Limits::default()).unwrap_err();
        assert!(matches!(err, VerifyError::BadParameters { .. }), "{err:?}");
    }

    #[test]
    fn duplicate_alphabet_entries_do_not_inflate_the_state_space() {
        let p = rotate_ring(3);
        let (_, plain) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        let (_, duped) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true, false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(plain.states, duped.states);
    }

    #[test]
    fn packed_explorer_matches_naive_on_verdicts() {
        // Hand-picked spread: stabilizing and oscillating, label and
        // output mode, r from 1 to 3 (the proptests in
        // tests/differential.rs cover random protocols).
        let rot = rotate_ring(3);
        let constp = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3u8 {
            for p in [&rot, &constp] {
                let fast =
                    verify_label_stabilization(p, &[0; 3], &[false, true], r, Limits::default())
                        .unwrap();
                let naive = verify_label_stabilization_naive(
                    p,
                    &[0; 3],
                    &[false, true],
                    r,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(fast.is_stabilizing(), naive.is_stabilizing(), "r = {r}");
                let fast_o =
                    verify_output_stabilization(p, &[0; 3], &[false, true], r, Limits::default())
                        .unwrap();
                let naive_o = verify_output_stabilization_naive(
                    p,
                    &[0; 3],
                    &[false, true],
                    r,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(fast_o.is_stabilizing(), naive_o.is_stabilizing(), "r = {r}");
            }
        }
    }

    #[test]
    fn verdicts_witnesses_and_stats_are_identical_across_thread_counts() {
        // The hard determinism invariant: not just equal verdicts, but
        // bit-identical witnesses and state/edge counts for every worker
        // count (tests/differential.rs covers random protocols).
        let p = rotate_ring(4);
        let at = |threads: usize| {
            let limits = Limits {
                threads,
                ..Limits::default()
            };
            let label = verify_label_stabilization_with_stats(
                &p,
                &[0; 4],
                &[false, true],
                3,
                limits.clone(),
            )
            .unwrap();
            let output =
                verify_output_stabilization(&p, &[0; 4], &[false, true], 3, limits).unwrap();
            (label, output)
        };
        let base = at(1);
        for threads in [2, 4, 7] {
            assert_eq!(base, at(threads), "threads = {threads}");
        }
    }

    #[test]
    fn scc_backends_agree_on_verdicts_witnesses_and_stats() {
        // The FB engine must be a drop-in for the Tarjan reference: same
        // verdicts, same witnesses bit for bit, same stats — at any
        // thread count (tests/differential.rs covers random protocols).
        let rot = rotate_ring(4);
        let constp = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        let run = |p: &Protocol<bool>, n: usize, scc: SccBackend, threads: usize| {
            let limits = Limits {
                scc,
                threads,
                ..Limits::default()
            };
            let inputs = vec![0; n];
            let label = verify_label_stabilization_with_stats(
                p,
                &inputs,
                &[false, true],
                3,
                limits.clone(),
            )
            .unwrap();
            let output =
                verify_output_stabilization(p, &inputs, &[false, true], 3, limits).unwrap();
            (label, output)
        };
        for (p, n) in [(&rot, 4), (&constp, 3)] {
            let reference = run(p, n, SccBackend::Tarjan, 1);
            for threads in [1, 2, 4] {
                assert_eq!(
                    reference,
                    run(p, n, SccBackend::ForwardBackward, threads),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn quotient_shrinks_the_ring_and_keeps_the_verdict() {
        let p = rotate_ring(5);
        let (full_v, full) = verify_label_stabilization_with_stats(
            &p,
            &[0; 5],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        let (quot_v, quot) = verify_label_stabilization_with_stats(
            &p,
            &[0; 5],
            &[false, true],
            2,
            Limits {
                symmetry: SymmetryMode::Auto,
                ..Limits::default()
            },
        )
        .unwrap();
        assert_eq!(full_v.is_stabilizing(), quot_v.is_stabilizing());
        // The rotation group has order 5; only the all-equal labelings
        // are fixed points, so the quotient is very close to 5× smaller.
        assert!(
            quot.states * 4 <= full.states,
            "quotient {} vs full {}",
            quot.states,
            full.states
        );
        assert!(quot.edges * 4 <= full.edges);
    }

    #[test]
    fn quotient_witness_replays_on_the_unquotiented_system() {
        for n in [3usize, 4, 5] {
            let p = rotate_ring(n);
            let v = verify_label_stabilization(
                &p,
                &vec![0; n],
                &[false, true],
                2,
                Limits {
                    symmetry: SymmetryMode::Auto,
                    ..Limits::default()
                },
            )
            .unwrap();
            let Verdict::NotStabilizing(w) = v else {
                panic!("rotation never label-stabilizes (n = {n})")
            };
            // The de-canonicalized witness must be a genuine cycle of the
            // full (unquotiented) system: labels change and the labeling
            // returns to the start after one script lap.
            let mut sim = Simulation::new(&p, &vec![0; n], w.labeling.clone()).unwrap();
            let mut sched = Scripted::cycle(w.schedule.clone());
            sched.validate(n).expect("witness names real nodes");
            let mut changed = false;
            let mut active = Vec::new();
            for _ in 0..w.schedule.len() {
                let before = sim.labeling().to_vec();
                sched.activations_into(sim.time() + 1, n, &mut active);
                sim.step_with(&active);
                changed |= before != sim.labeling();
            }
            assert!(changed, "labels changed along the cycle (n = {n})");
            assert_eq!(sim.labeling(), &w.labeling[..], "cycle closes (n = {n})");
        }
    }

    #[test]
    fn quotient_is_thread_and_backend_deterministic() {
        let p = rotate_ring(4);
        let run = |threads: usize, scc: SccBackend| {
            verify_label_stabilization_with_stats(
                &p,
                &[0; 4],
                &[false, true],
                3,
                Limits {
                    threads,
                    scc,
                    symmetry: SymmetryMode::Auto,
                    ..Limits::default()
                },
            )
            .unwrap()
        };
        let base = run(1, SccBackend::Tarjan);
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                base,
                run(threads, SccBackend::ForwardBackward),
                "t{threads}"
            );
        }
    }

    #[test]
    fn stats_report_packed_sizes() {
        let p = rotate_ring(3);
        let (_, stats) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        // 3 label bits + 3 countdown bits pack into one word.
        assert_eq!(stats.words_per_state, 1);
        assert!(stats.states > 0 && stats.edges > 0);
        assert_eq!(stats.state_bytes, stats.states * 8);
        // Reachable closure of 8 labelings × countdowns ∈ {1,2}³ minus
        // combinations the dynamics never produce; at least all 8 initial
        // states exist.
        assert!(stats.states >= 8);
    }
}
