//! The labeling × countdown product graph and its SCC analysis.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use stateless_core::convergence::all_labelings;
use stateless_core::label::Label;
use stateless_core::prelude::*;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of product states to materialize.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 2_000_000,
        }
    }
}

/// Errors from exact verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The product graph exceeded [`Limits::max_states`].
    TooManyStates {
        /// The limit that was hit.
        limit: usize,
    },
    /// A protocol probe failed.
    Core(CoreError),
    /// Parameters out of range (e.g. `r = 0` or `n > 16`).
    BadParameters {
        /// Description.
        what: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooManyStates { limit } => {
                write!(f, "product graph exceeded {limit} states")
            }
            VerifyError::Core(e) => write!(f, "protocol probe failed: {e}"),
            VerifyError::BadParameters { what } => write!(f, "bad parameters: {what}"),
        }
    }
}

impl Error for VerifyError {}

impl From<CoreError> for VerifyError {
    fn from(e: CoreError) -> Self {
        VerifyError::Core(e)
    }
}

/// A concrete non-convergence witness: start at `labeling` and repeat
/// `schedule` forever; the labeling never converges, and the schedule is
/// r-fair by the countdown construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness<L> {
    /// The labeling at the cycle entry.
    pub labeling: Vec<L>,
    /// The cyclic activation script.
    pub schedule: Vec<Vec<NodeId>>,
}

/// The verification verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<L> {
    /// Every r-fair run from every initial labeling converges.
    Stabilizing,
    /// Some r-fair run oscillates forever; here is one.
    NotStabilizing(CycleWitness<L>),
}

impl<L> Verdict<L> {
    /// Whether the verdict is [`Verdict::Stabilizing`].
    pub fn is_stabilizing(&self) -> bool {
        matches!(self, Verdict::Stabilizing)
    }
}

/// One product-graph vertex: `(labeling, countdown, outputs)` (outputs
/// all-zero when not tracked).
type ProductState<L> = (Vec<L>, Vec<u8>, Vec<Output>);

struct Explorer<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    index: HashMap<ProductState<L>, usize>,
    states: Vec<ProductState<L>>,
    /// edges[u] = (v, interesting: labeling/output changed, activation mask)
    edges: Vec<Vec<(usize, bool, u32)>>,
    /// Reusable gather/outgoing buffers for the buffered reaction path
    /// (`expand` probes every reaction up to 2^n times per state; going
    /// through `Protocol::apply_buffered` avoids two `Vec` allocations per
    /// probe).
    in_buf: Vec<L>,
    out_buf: Vec<L>,
}

impl<'p, L: Label> Explorer<'p, L> {
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: Limits,
    ) -> Result<Self, VerifyError> {
        let n = protocol.node_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        let mut ex = Explorer {
            protocol,
            inputs: inputs.to_vec(),
            r,
            track_outputs,
            index: HashMap::new(),
            states: Vec::new(),
            edges: Vec::new(),
            in_buf: Vec::new(),
            out_buf: Vec::new(),
        };
        // Initialization vertices: every labeling, full countdown.
        let mut frontier: Vec<usize> = Vec::new();
        for labeling in all_labelings(alphabet, protocol.edge_count()) {
            let state = (labeling, vec![r; n], vec![0; n]);
            let id = ex.intern(state, limits)?;
            frontier.push(id);
        }
        let mut cursor = 0;
        while cursor < ex.states.len() {
            ex.expand(cursor, limits)?;
            cursor += 1;
        }
        Ok(ex)
    }

    fn intern(&mut self, state: ProductState<L>, limits: Limits) -> Result<usize, VerifyError> {
        if let Some(&id) = self.index.get(&state) {
            return Ok(id);
        }
        if self.states.len() >= limits.max_states {
            return Err(VerifyError::TooManyStates {
                limit: limits.max_states,
            });
        }
        let id = self.states.len();
        self.index.insert(state.clone(), id);
        self.states.push(state);
        self.edges.push(Vec::new());
        Ok(id)
    }

    fn expand(&mut self, u: usize, limits: Limits) -> Result<(), VerifyError> {
        let n = self.protocol.node_count();
        let (labeling, countdown, outputs) = self.states[u].clone();
        let forced: u32 = (0..n).filter(|&i| countdown[i] == 1).map(|i| 1 << i).sum();
        let free: Vec<usize> = (0..n).filter(|&i| countdown[i] != 1).collect();
        // Every activation set: forced nodes plus any subset of the rest
        // (skipping the empty total set).
        for subset in 0..(1u32 << free.len()) {
            let mut mask = forced;
            for (k, &i) in free.iter().enumerate() {
                if subset >> k & 1 == 1 {
                    mask |= 1 << i;
                }
            }
            if mask == 0 {
                continue;
            }
            let mut next_labeling = labeling.clone();
            let mut next_outputs = outputs.clone();
            let graph = self.protocol.graph();
            for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                // Buffered reaction probe: all reads come from the
                // pre-step `labeling`, so the per-node commits into
                // next_labeling cannot corrupt later probes.
                let y = self.protocol.apply_buffered(
                    i,
                    &labeling,
                    self.inputs[i],
                    &mut self.in_buf,
                    &mut self.out_buf,
                );
                for (slot, &e) in self.out_buf.iter().zip(graph.out_edges(i)) {
                    next_labeling[e] = slot.clone();
                }
                next_outputs[i] = y;
            }
            let next_countdown: Vec<u8> = (0..n)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        self.r
                    } else {
                        countdown[i] - 1
                    }
                })
                .collect();
            let interesting = if self.track_outputs {
                next_outputs != outputs
            } else {
                next_labeling != labeling
            };
            if !self.track_outputs {
                next_outputs = vec![0; n]; // outputs not part of the state
            }
            let v = self.intern((next_labeling, next_countdown, next_outputs), limits)?;
            self.edges[u].push((v, interesting, mask));
        }
        Ok(())
    }

    /// Kosaraju SCC; returns the component id per state.
    fn sccs(&self) -> Vec<usize> {
        let n = self.states.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Iterative post-order DFS.
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            seen[start] = true;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < self.edges[u].len() {
                    let v = self.edges[u][*next].0;
                    *next += 1;
                    if !seen[v] {
                        seen[v] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        // Reverse graph.
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, _, _) in outs {
                redges[v].push(u);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(u) = stack.pop() {
                for &v in &redges[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = c;
                        stack.push(v);
                    }
                }
            }
            c += 1;
        }
        comp
    }

    /// Finds a cycle through an "interesting" intra-SCC edge, as a witness.
    fn witness(&self, comp: &[usize]) -> Option<CycleWitness<L>> {
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, interesting, mask) in outs {
                if !interesting || comp[u] != comp[v] {
                    continue;
                }
                // BFS from v back to u inside the component.
                let mut prev: HashMap<usize, (usize, u32)> = HashMap::new();
                let mut queue = std::collections::VecDeque::from([v]);
                let mut found = v == u;
                while let Some(w) = queue.pop_front() {
                    if found {
                        break;
                    }
                    for &(x, _, m) in &self.edges[w] {
                        if comp[x] == comp[u] && x != v && !prev.contains_key(&x) {
                            prev.insert(x, (w, m));
                            if x == u {
                                found = true;
                                break;
                            }
                            queue.push_back(x);
                        }
                    }
                }
                if !found && v != u {
                    continue;
                }
                // Reconstruct u →(mask) v → … → u.
                let mut masks = vec![mask];
                let mut path_rev = Vec::new();
                let mut at = u;
                while at != v {
                    let &(p, m) = prev.get(&at).expect("BFS reached u");
                    path_rev.push(m);
                    at = p;
                }
                masks.extend(path_rev.into_iter().rev());
                let n = self.protocol.node_count();
                let schedule = masks
                    .into_iter()
                    .map(|m| (0..n).filter(|&i| m >> i & 1 == 1).collect())
                    .collect();
                return Some(CycleWitness {
                    labeling: self.states[u].0.clone(),
                    schedule,
                });
            }
        }
        None
    }
}

/// Decides **label** r-stabilization of `protocol` under the given inputs,
/// exactly, by exploring the full product graph over `alphabet`-labelings.
///
/// `alphabet` must be closed under the reactions (a label outside it makes
/// the exploration grow until the limit trips).
///
/// # Errors
///
/// [`VerifyError::TooManyStates`] if the product graph exceeds the limit;
/// [`VerifyError::BadParameters`] for `r = 0` or oversized graphs.
pub fn verify_label_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, false, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

/// Decides **output** r-stabilization (the weaker condition: outputs must
/// converge, labels may dance forever). Same exploration with outputs in
/// the state.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_output_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, true, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::reaction::{ConstReaction, FnReaction};

    fn rotate_ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 42)))
            .build()
            .unwrap()
    }

    #[test]
    fn constant_protocol_is_stabilizing_for_all_r() {
        let p = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3 {
            let v = verify_label_stabilization(&p, &[0; 3], &[false, true], r, Limits::default())
                .unwrap();
            assert!(v.is_stabilizing(), "r = {r}");
        }
    }

    #[test]
    fn rotation_is_not_label_stabilizing_but_output_stabilizes() {
        let p = rotate_ring(3);
        let label =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        match label {
            Verdict::NotStabilizing(w) => {
                assert!(!w.schedule.is_empty());
            }
            Verdict::Stabilizing => panic!("rotation never label-stabilizes"),
        }
        let output =
            verify_output_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        assert!(output.is_stabilizing(), "constant outputs converge");
    }

    #[test]
    fn witness_schedule_really_oscillates() {
        let p = rotate_ring(3);
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 3, Limits::default()).unwrap();
        let Verdict::NotStabilizing(w) = v else {
            panic!("expected a witness")
        };
        // Replay the witness: labels must change within a few script laps
        // and the labeling must return to the start each lap (it is a
        // cycle in the product graph).
        let mut sim = Simulation::new(&p, &[0; 3], w.labeling.clone()).unwrap();
        let mut sched = Scripted::cycle(w.schedule.clone());
        sched.validate(3).expect("witness names real nodes");
        let mut changed = false;
        let mut active = Vec::new();
        for _ in 0..w.schedule.len() {
            let before = sim.labeling().to_vec();
            sched.activations_into(sim.time() + 1, 3, &mut active);
            sim.step_with(&active);
            changed |= before != sim.labeling();
        }
        assert!(changed, "labels changed along the cycle");
        assert_eq!(sim.labeling(), &w.labeling[..], "cycle closes");
    }

    #[test]
    fn limits_are_enforced() {
        let p = rotate_ring(4);
        let err =
            verify_label_stabilization(&p, &[0; 4], &[false, true], 3, Limits { max_states: 10 })
                .unwrap_err();
        assert_eq!(err, VerifyError::TooManyStates { limit: 10 });
    }

    #[test]
    fn r_zero_is_rejected() {
        let p = rotate_ring(3);
        assert!(matches!(
            verify_label_stabilization(&p, &[0; 3], &[false, true], 0, Limits::default()),
            Err(VerifyError::BadParameters { .. })
        ));
    }
}
