//! The labeling × countdown product graph and its SCC analysis.
//!
//! # Memory model
//!
//! The explorer is built on the fingerprint-interning machinery of
//! [`stateless_core::intern`], so the product graph is stored flat:
//!
//! * **Packed states.** Each product state `(labeling, countdown,
//!   outputs)` is bit-packed into a fixed number of `u64` words: every
//!   edge label becomes a `⌈log₂|Σ|⌉`-bit alphabet index and every
//!   per-node countdown a `⌈log₂ r⌉`-bit field (outputs, tracked only for
//!   output-stabilization queries, ride in a parallel flat word row). A
//!   state of a 16-edge Boolean protocol with `r ≤ 16` occupies 16 bytes
//!   instead of three heap `Vec`s *plus* their `HashMap`-key clones.
//! * **Sharded fingerprint interning.** States are resolved through a
//!   [`ShardedStateIndex`]: the top bits of the seeded FxHash fingerprint
//!   pick one of [`SHARD_COUNT`] self-contained shards, each owning its
//!   fingerprint index, collision side list, and packed-row arenas, and
//!   ids are `(shard, local)` pairs packed into one `u64`. Every
//!   fingerprint hit is confirmed by exact equality against the shard
//!   arena, so hash collisions cost a comparison but never a wrong
//!   verdict.
//! * **CSR edges.** Transitions live in flat compressed-sparse-row
//!   arrays (`edge_offsets` / `edge_targets` / `edge_meta`), stitched in
//!   state order from per-chunk segments — 8 bytes per edge instead of a
//!   `Vec<Vec<(usize, bool, u32)>>`. [`Limits::max_edges`] bounds them:
//!   on dense activation sets edges outnumber states by orders of
//!   magnitude, so the state cap alone does not bound memory.
//! * **Parallel SCC.** Components come from [`stateless_core::scc`]: a
//!   parallel **trim** pass (repeatedly peel states of live in/out-degree
//!   0 — each is a trivial SCC and no cycle member is ever peeled)
//!   followed by **Forward–Backward** decomposition of the remainder
//!   (pivot → forward set ∩ backward set = one SCC; the three difference
//!   slices recurse as parallel tasks), both over the same CSR arrays,
//!   on [`Limits::threads`] workers. Every FB task pivots on the
//!   **minimum dense state id** of its slice and both backends return
//!   the canonical numbering (components ordered by minimum member id),
//!   so component ids — and hence verdicts and witnesses — are
//!   bit-identical across thread counts and across backends. The serial
//!   iterative Tarjan that shipped through PR 4 is retained as
//!   [`SccBackend::Tarjan`] (backed by the `#[doc(hidden)]`
//!   `stateless_core::scc::tarjan`), a `_naive`-style reference for the
//!   differential suite (`tests/scc.rs`, `tests/differential.rs`) — use
//!   the default [`SccBackend::ForwardBackward`] everywhere else.
//!
//! # Parallel exploration and determinism
//!
//! Frontier expansion runs on [`Limits::threads`] workers in batches of
//! bounded fan-out, in three phases per batch:
//!
//! 1. **Expand** (parallel over chunks): workers claim contiguous slices
//!    of the batch's source states, decode each state from the shard
//!    arenas (read locks only), enumerate its activation sets, and emit
//!    per-chunk CSR segments plus, per target shard, a record stream of
//!    `(slot, stream key, fingerprint, packed words)` — successors are
//!    *not* resolved yet.
//! 2. **Intern** (parallel over shards): each shard is claimed by exactly
//!    one worker, which replays that shard's records **in stream order**
//!    (chunk by chunk, record by record) against the shard's fingerprint
//!    index — so local id assignment never depends on thread timing, and
//!    shards never contend.
//! 3. **Number and stitch** (serial barrier + parallel scatter): fresh
//!    states from all shards are merged by stream key — the position of
//!    the edge that first discovered them — and dense ids are assigned in
//!    that order, which is exactly the order the sequential explorer
//!    interns in. Chunk segments then scatter their resolved targets and
//!    are appended to the flat CSR arrays in state order.
//!
//! Batch and chunk boundaries derive only from per-state degree
//! estimates (never the thread count), shard assignment depends only on
//! the fingerprint, and every merge is ordered by stream position — so
//! verdicts, state numbering, and witnesses are **bit-identical for
//! every thread count**, and `threads = 1` *is* the sequential packed
//! explorer rather than a separate code path. `tests/differential.rs`
//! asserts this invariant on random protocols.
//!
//! The previous owned-`Vec`-interning explorer is retained as
//! [`verify_label_stabilization_naive`] / [`verify_output_stabilization_naive`]
//! and differentially tested against this one (`tests/differential.rs`);
//! it exists for testing only. One behavioral refinement: the packed
//! explorer requires the reactions to be closed over `alphabet` and
//! reports a violation immediately as [`VerifyError::BadParameters`],
//! where the naive explorer would silently grow the state space until
//! [`Limits::max_states`] tripped.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};

use stateless_core::convergence::all_labelings;
use stateless_core::intern::{
    bits_for, pack, pack_state_id, shard_of, unpack, unpack_state_id, FxBuildHasher, FxHasher,
    ShardedStateIndex, SHARD_COUNT,
};
use stateless_core::label::Label;
use stateless_core::prelude::*;
use stateless_core::scc;

/// Exploration limits and parallelism.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of product states to materialize.
    pub max_states: usize,
    /// Maximum number of product transitions to materialize in the CSR
    /// arrays. Edges cost 8 bytes each and outnumber states by the
    /// activation-set fan-out (up to `2^n − 1` per state on dense
    /// activation sets, ~30× the state bytes in practice), so the state
    /// cap alone does not bound memory.
    pub max_edges: usize,
    /// Worker threads for frontier expansion, SCC condensation, and the
    /// interesting-edge scan; `0` means all available cores. Verdicts,
    /// state ids, and witnesses are bit-identical for every value — the
    /// thread count is purely a throughput knob.
    pub threads: usize,
    /// Which SCC engine condenses the product graph. Keep the default
    /// [`SccBackend::ForwardBackward`]; the Tarjan variant exists for
    /// differential testing and as a low-memory fallback.
    pub scc: SccBackend,
}

/// The SCC engine used on the explored product graph. Both backends
/// produce the canonical component numbering (components ordered by
/// their minimum dense state id), so verdicts, witnesses, and stats are
/// bit-identical whichever is selected — the differential suite
/// (`tests/scc.rs`, `tests/differential.rs`) asserts exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SccBackend {
    /// Parallel trim + Forward–Backward decomposition on
    /// [`Limits::threads`] workers ([`stateless_core::scc::condense`]).
    #[default]
    ForwardBackward,
    /// Serial iterative Tarjan — the PR 3/4 implementation, kept as the
    /// reference for differential tests; it never materializes the
    /// reverse CSR, so it is also the fallback when memory is tighter
    /// than wall time.
    Tarjan,
}

impl Default for Limits {
    fn default() -> Self {
        // The packed-arena explorer stores a Boolean-alphabet state in a
        // word or two (plus ~16 bytes of fingerprint index and 8 bytes per
        // CSR edge), so 16M states is a few hundred MB — the old
        // owned-`Vec` explorer exhausted the same memory near 2M. 256M
        // edges caps the CSR arrays near 2 GiB.
        Limits {
            max_states: 16_000_000,
            max_edges: 1 << 28,
            threads: 0,
            scc: SccBackend::ForwardBackward,
        }
    }
}

/// Errors from exact verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The product graph exceeded [`Limits::max_states`].
    TooManyStates {
        /// The limit that was hit.
        limit: usize,
    },
    /// The product graph exceeded [`Limits::max_edges`].
    TooManyEdges {
        /// The limit that was hit.
        limit: usize,
    },
    /// A protocol probe failed.
    Core(CoreError),
    /// Parameters out of range (e.g. `r = 0`, `n > 16`, or a reaction
    /// that emits labels outside the declared alphabet).
    BadParameters {
        /// Description.
        what: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooManyStates { limit } => {
                write!(f, "product graph exceeded {limit} states")
            }
            VerifyError::TooManyEdges { limit } => {
                write!(f, "product graph exceeded {limit} edges")
            }
            VerifyError::Core(e) => write!(f, "protocol probe failed: {e}"),
            VerifyError::BadParameters { what } => write!(f, "bad parameters: {what}"),
        }
    }
}

impl Error for VerifyError {}

impl From<CoreError> for VerifyError {
    fn from(e: CoreError) -> Self {
        VerifyError::Core(e)
    }
}

/// A concrete non-convergence witness: start at `labeling` and repeat
/// `schedule` forever; the labeling never converges, and the schedule is
/// r-fair by the countdown construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness<L> {
    /// The labeling at the cycle entry.
    pub labeling: Vec<L>,
    /// The cyclic activation script.
    pub schedule: Vec<Vec<NodeId>>,
}

/// The verification verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<L> {
    /// Every r-fair run from every initial labeling converges.
    Stabilizing,
    /// Some r-fair run oscillates forever; here is one.
    NotStabilizing(CycleWitness<L>),
}

impl<L> Verdict<L> {
    /// Whether the verdict is [`Verdict::Stabilizing`].
    pub fn is_stabilizing(&self) -> bool {
        matches!(self, Verdict::Stabilizing)
    }
}

/// Size accounting for one exploration, reported by
/// [`verify_label_stabilization_with_stats`]. All byte figures are
/// *logical payload* bytes — rows × row width for states, the flat-array
/// lengths for edges. Allocation slack on top (partially filled arena
/// blocks in each of the [`SHARD_COUNT`] shards, ~16 bytes of fingerprint
/// index per state) is excluded; it is bounded and amortizes away at the
/// state counts where memory matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Product states materialized.
    pub states: usize,
    /// Product transitions materialized.
    pub edges: usize,
    /// Packed `u64` words per state.
    pub words_per_state: usize,
    /// Bytes of state storage: the packed arenas plus output rows.
    pub state_bytes: usize,
    /// Bytes of CSR edge storage (`edge_offsets`/`edge_targets`/`edge_meta`).
    pub edge_bytes: usize,
}

/// `edge_meta` bit holding the "interesting" flag (the labeling — or the
/// outputs, for output-stabilization — changed along the edge). The low
/// 16 bits hold the activation mask (`n ≤ 16`).
const META_INTERESTING: u32 = 1 << 16;

/// Per-batch fan-out budget: a batch closes once the estimated edge count
/// of its sources reaches this. Bounds the transient record buffers
/// (roughly 30–40 bytes per edge) independently of the graph.
///
/// Fixed constants, **never** derived from the thread count or the
/// machine: batch and chunk boundaries decide the order in which fresh
/// states are discovered, so they are part of the determinism contract.
const BATCH_EDGE_BUDGET: u64 = 1 << 20;
/// Per-chunk fan-out budget: sources are grouped into chunks of roughly
/// this many edges, the unit of work-stealing inside a batch.
const CHUNK_EDGE_BUDGET: u64 = 1 << 14;
/// Initial labelings interned per seed batch.
const SEED_BATCH_STATES: usize = 1 << 20;
/// Batches with fewer estimated edges than this run their pipeline waves
/// inline instead of spawning workers: the vendored rayon stand-in has no
/// persistent pool, so each wave costs OS thread spawns, which only
/// amortize over enough work. Purely a scheduling heuristic — the
/// pipeline's results are deterministic by construction, so execution
/// strategy never affects verdicts, ids, or witnesses.
const PARALLEL_MIN_BATCH_EDGES: u64 = 1 << 16;
/// States per chunk of the parallel interesting-edge scan. A fixed
/// constant for the same reason as the budgets above: the scan returns
/// the first hit of the earliest chunk, so chunk boundaries must not
/// depend on the thread count.
const SCAN_CHUNK_STATES: usize = 1 << 14;

/// Read-only exploration parameters, shared by every worker.
struct Config<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    /// Deduplicated alphabet; packed label fields are indices into it.
    alphabet: Vec<L>,
    label_index: HashMap<L, u32, FxBuildHasher>,
    label_width: u32,
    countdown_width: u32,
    words_per_state: usize,
    /// Words of auxiliary per-state output storage (`n` when outputs are
    /// tracked, else 0). Outputs are raw `Output` words — no palette
    /// indirection, so fingerprints and equality never depend on the
    /// (timing-dependent) order outputs are first observed in.
    aux_len: usize,
    n: usize,
    e: usize,
    /// Resolved worker count (≥ 1).
    threads: usize,
}

impl<L: Label> Config<'_, L> {
    /// Number of *free* (not deadline-forced) nodes of a packed state: a
    /// countdown field packs `cd − 1`, so nonzero means the node is not
    /// forced. Sizes the state's fan-out as `2^free` activation sets.
    fn free_count(&self, row: &[u64]) -> u8 {
        let base = self.e * self.label_width as usize;
        let cw = self.countdown_width;
        (0..self.n)
            .filter(|&i| unpack(row, base + i * cw as usize, cw) != 0)
            .count() as u8
    }
}

/// Seeded FxHash fingerprint of a packed state: the `u64` words, then the
/// auxiliary output words. This is the *only* fingerprint function — the
/// shard, the confirm-equality probe, and every thread count agree on it.
fn fingerprint(words: &[u64], aux: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.write_u64(w);
    }
    for &a in aux {
        h.write_u64(a);
    }
    h.finish()
}

/// Per-target-shard record stream of one chunk: each record is an edge
/// whose successor hashes into that shard, in stream order (source state
/// order, then activation-set order). Flat SoA storage — `words`/`aux`
/// are strided by the packed row lengths.
#[derive(Default)]
struct ShardRecords {
    /// Chunk-local edge index to scatter the resolved target back into.
    slots: Vec<u32>,
    /// Stream keys: `(source dense id << 16) | edge index` for expansion
    /// records, the enumeration index for seed records. Strictly
    /// increasing along each shard's replayed stream; fresh states are
    /// dense-numbered in key order.
    keys: Vec<u64>,
    fps: Vec<u64>,
    words: Vec<u64>,
    aux: Vec<u64>,
}

impl ShardRecords {
    /// A record buffer pre-sized for about `records` records of `w` packed
    /// words and `aux_len` auxiliary words — fingerprints spread records
    /// uniformly over the shards, so sizing each to its fair share (plus
    /// slack) avoids most growth reallocations on the hot path.
    fn with_capacity(records: usize, w: usize, aux_len: usize) -> Self {
        ShardRecords {
            slots: Vec::with_capacity(records),
            keys: Vec::with_capacity(records),
            fps: Vec::with_capacity(records),
            words: Vec::with_capacity(records * w),
            aux: Vec::with_capacity(records * aux_len),
        }
    }
}

/// One chunk's expansion output: its CSR segment (targets still
/// unresolved) plus the per-shard successor records.
struct ChunkOut {
    /// Edges emitted per source state, in source order.
    counts: Vec<u32>,
    /// Edge metadata (activation mask | interesting flag), in edge order.
    meta: Vec<u32>,
    /// Successor records, bucketed by target shard.
    shards: Vec<ShardRecords>,
}

/// One shard's interning output for a batch: per chunk, the local ids the
/// shard resolved that chunk's records to, plus the fresh states it
/// discovered (ascending stream keys — the merge relies on it).
struct ShardIntern {
    resolved: Vec<Vec<u32>>,
    /// `(stream key, local id, free-node count)` per fresh state.
    fresh: Vec<(u64, u32, u8)>,
}

/// Runs `count` independent jobs on up to `threads` workers (claimed via
/// an atomic cursor, like the sweep drivers in `stateless-core`) and
/// returns the results **in job order** — callers depend on index order,
/// never completion order, which is what keeps the pipeline
/// deterministic. `threads = 1` runs inline on the caller thread.
fn run_indexed<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(count);
    rayon::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(count))
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        for worker in workers {
            indexed.extend(worker.join().expect("pipeline worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

struct Explorer<'p, L: Label> {
    cfg: Config<'p, L>,
    /// Sharded state storage: fingerprint index + packed rows per shard.
    index: ShardedStateIndex,
    /// Dense id → packed `(shard, local)` id.
    dense_ids: Vec<u64>,
    /// Dense id → free-node count (sizes batches and chunks).
    free_bits: Vec<u8>,
    n_states: usize,
    /// CSR transition arrays: state `u`'s edges are
    /// `edge_targets[edge_offsets[u]..edge_offsets[u+1]]` with matching
    /// `edge_meta` (activation mask | [`META_INTERESTING`]). Stitched in
    /// state order from per-chunk segments.
    edge_offsets: Vec<usize>,
    edge_targets: Vec<u32>,
    edge_meta: Vec<u32>,
}

impl<'p, L: Label> Explorer<'p, L> {
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: Limits,
    ) -> Result<Self, VerifyError> {
        let n = protocol.node_count();
        let e = protocol.edge_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        // Deduplicate the alphabet (first occurrence wins) so equal labels
        // share one packed index and states dedup exactly as in the naive
        // explorer.
        let mut label_index: HashMap<L, u32, FxBuildHasher> = HashMap::default();
        let mut dedup: Vec<L> = Vec::with_capacity(alphabet.len());
        for l in alphabet {
            if !label_index.contains_key(l) {
                label_index.insert(l.clone(), dedup.len() as u32);
                dedup.push(l.clone());
            }
        }
        let label_width = bits_for(dedup.len());
        let countdown_width = bits_for(r as usize);
        let state_bits = e * label_width as usize + n * countdown_width as usize;
        let words_per_state = state_bits.div_ceil(64).max(1);
        let aux_len = if track_outputs { n } else { 0 };
        let threads = if limits.threads == 0 {
            rayon::current_num_threads()
        } else {
            limits.threads
        }
        .max(1);
        let mut ex = Explorer {
            cfg: Config {
                protocol,
                inputs: inputs.to_vec(),
                r,
                track_outputs,
                alphabet: dedup,
                label_index,
                label_width,
                countdown_width,
                words_per_state,
                aux_len,
                n,
                e,
                threads,
            },
            index: ShardedStateIndex::new(words_per_state, aux_len),
            dense_ids: Vec::new(),
            free_bits: Vec::new(),
            n_states: 0,
            edge_offsets: vec![0],
            edge_targets: Vec::new(),
            edge_meta: Vec::new(),
        };
        ex.seed(&limits)?;
        let mut cursor = 0;
        while cursor < ex.n_states {
            cursor = ex.expand_batch(cursor, &limits)?;
        }
        debug_assert_eq!(ex.edge_offsets.len(), ex.n_states + 1);
        Ok(ex)
    }

    /// Interns the initialization vertices — every labeling with full
    /// countdowns and zero outputs — in enumeration order, batched so the
    /// record buffers stay bounded on huge alphabets.
    fn seed(&mut self, limits: &Limits) -> Result<(), VerifyError> {
        let (w, lw, cw) = (
            self.cfg.words_per_state,
            self.cfg.label_width,
            self.cfg.countdown_width,
        );
        let (n, e, r, threads) = (self.cfg.n, self.cfg.e, self.cfg.r, self.cfg.threads);
        let digit_alphabet: Vec<u32> = (0..self.cfg.alphabet.len() as u32).collect();
        let mut labelings = all_labelings(&digit_alphabet, e);
        let mut state_buf = vec![0u64; w];
        let aux_zero = vec![0u64; self.cfg.aux_len];
        let mut next_key = 0u64;
        loop {
            let mut recs: Vec<ShardRecords> =
                (0..SHARD_COUNT).map(|_| ShardRecords::default()).collect();
            let mut count = 0usize;
            while count < SEED_BATCH_STATES {
                let Some(digits) = labelings.next() else {
                    break;
                };
                state_buf.fill(0);
                for (k, &d) in digits.iter().enumerate() {
                    pack(&mut state_buf, k * lw as usize, lw, u64::from(d));
                }
                for i in 0..n {
                    pack(
                        &mut state_buf,
                        e * lw as usize + i * cw as usize,
                        cw,
                        u64::from(r - 1),
                    );
                }
                let fp = fingerprint(&state_buf, &aux_zero);
                let rec = &mut recs[shard_of(fp)];
                // No CSR slot: seed batches are interned with
                // `want_resolved = false` and never scattered.
                rec.keys.push(next_key);
                rec.fps.push(fp);
                rec.words.extend_from_slice(&state_buf);
                rec.aux.extend_from_slice(&aux_zero);
                next_key += 1;
                count += 1;
            }
            if count == 0 {
                break;
            }
            let chunks = vec![ChunkOut {
                counts: Vec::new(),
                meta: Vec::new(),
                shards: recs,
            }];
            let wave_threads = if (count as u64) < PARALLEL_MIN_BATCH_EDGES {
                1
            } else {
                threads
            };
            let interned = {
                let this = &*self;
                run_indexed(wave_threads, SHARD_COUNT, |s| {
                    this.intern_shard(s, &chunks, false)
                })
            };
            self.assign_dense(&interned, limits)?;
            if count < SEED_BATCH_STATES {
                break;
            }
        }
        Ok(())
    }

    /// Estimated fan-out of a state with `free` unforced nodes: every
    /// subset of the free nodes joins the forced ones, minus the empty
    /// total set (possible only when nothing is forced, i.e. `free = n`).
    fn est_edges(&self, free: u8) -> u64 {
        (1u64 << free) - u64::from(usize::from(free) == self.cfg.n)
    }

    /// Expands one batch of source states starting at `cursor` through
    /// the three-phase pipeline (see the module docs) and returns the
    /// cursor past the batch.
    fn expand_batch(&mut self, cursor: usize, limits: &Limits) -> Result<usize, VerifyError> {
        // Batch = the next source range whose estimated fan-out fits the
        // budget (always at least one source). Boundaries derive only
        // from per-state degree estimates, never the thread count.
        let mut end = cursor;
        let mut est = 0u64;
        while end < self.n_states && (end == cursor || est < BATCH_EDGE_BUDGET) {
            est += self.est_edges(self.free_bits[end]);
            end += 1;
        }
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = cursor;
        let mut acc = 0u64;
        for u in cursor..end {
            acc += self.est_edges(self.free_bits[u]);
            if acc >= CHUNK_EDGE_BUDGET {
                ranges.push((start, u + 1));
                start = u + 1;
                acc = 0;
            }
        }
        if start < end {
            ranges.push((start, end));
        }
        // Small batches run their waves inline — OS thread spawns (no
        // persistent pool in the vendored rayon) only amortize over
        // enough work, and the results are identical either way.
        let threads = if est < PARALLEL_MIN_BATCH_EDGES {
            1
        } else {
            self.cfg.threads
        };
        // Phase 1: expand chunks in parallel.
        let chunk_outs: Vec<ChunkOut> = {
            let this = &*self;
            run_indexed(threads, ranges.len(), |c| {
                this.expand_chunk(ranges[c].0, ranges[c].1)
            })
            .into_iter()
            .collect::<Result<_, _>>()?
        };
        // Phase 2: replay each shard's record stream in order.
        let interned: Vec<ShardIntern> = {
            let this = &*self;
            run_indexed(threads, SHARD_COUNT, |s| {
                this.intern_shard(s, &chunk_outs, true)
            })
        };
        // Phase 3a (serial barrier): dense-number the fresh states.
        self.assign_dense(&interned, limits)?;
        // Phase 3b: scatter resolved dense targets per chunk, in parallel.
        let chunk_targets: Vec<Vec<u32>> = {
            let this = &*self;
            run_indexed(threads, chunk_outs.len(), |c| {
                this.resolve_chunk(&chunk_outs[c], &interned, c)
            })
        };
        // Phase 3c (serial): stitch the segments in state order.
        for (chunk, targets) in chunk_outs.iter().zip(&chunk_targets) {
            if self.edge_targets.len() + targets.len() > limits.max_edges {
                return Err(VerifyError::TooManyEdges {
                    limit: limits.max_edges,
                });
            }
            for &c in &chunk.counts {
                let last = *self.edge_offsets.last().expect("offsets seeded with 0");
                self.edge_offsets.push(last + c as usize);
            }
            self.edge_targets.extend_from_slice(targets);
            self.edge_meta.extend_from_slice(&chunk.meta);
        }
        Ok(end)
    }

    /// Phase 1: expands source states `start..end`, emitting the chunk's
    /// CSR segment and per-shard successor records. Takes only read locks
    /// on the shards; every per-edge step is allocation-free.
    fn expand_chunk(&self, start: usize, end: usize) -> Result<ChunkOut, VerifyError> {
        let cfg = &self.cfg;
        let (n, e, w) = (cfg.n, cfg.e, cfg.words_per_state);
        let (lw, cw) = (cfg.label_width, cfg.countdown_width);
        let guards = self.index.read_all();
        let est: u64 = self.free_bits[start..end]
            .iter()
            .map(|&f| self.est_edges(f))
            .sum();
        let per_shard = (est as usize / SHARD_COUNT) * 5 / 4 + 4;
        let mut out = ChunkOut {
            counts: Vec::with_capacity(end - start),
            meta: Vec::with_capacity(est as usize),
            shards: (0..SHARD_COUNT)
                .map(|_| ShardRecords::with_capacity(per_shard, w, cfg.aux_len))
                .collect(),
        };
        let mut labeling_buf: Vec<L> = Vec::with_capacity(e);
        let mut label_idx_buf = vec![0u32; e];
        let mut next_label_idx = vec![0u32; e];
        let mut countdown_buf = vec![0u8; n];
        let mut out_words_buf = vec![0u64; cfg.aux_len];
        let mut next_out_words = vec![0u64; cfg.aux_len];
        let mut state_buf = vec![0u64; w];
        let mut in_buf: Vec<L> = Vec::new();
        let mut react_buf: Vec<L> = Vec::new();
        let mut free_nodes: Vec<usize> = Vec::with_capacity(n);
        for u in start..end {
            // Decode the source state from its shard arena.
            let (s, local) = unpack_state_id(self.dense_ids[u]);
            {
                let row = guards[s].row(local);
                labeling_buf.clear();
                for (k, idx) in label_idx_buf.iter_mut().enumerate() {
                    let v = unpack(row, k * lw as usize, lw) as u32;
                    *idx = v;
                    labeling_buf.push(cfg.alphabet[v as usize].clone());
                }
                for (i, cd) in countdown_buf.iter_mut().enumerate() {
                    *cd = unpack(row, e * lw as usize + i * cw as usize, cw) as u8 + 1;
                }
                if cfg.track_outputs {
                    out_words_buf.copy_from_slice(guards[s].aux_row(local));
                }
            }
            let forced: u32 = (0..n)
                .filter(|&i| countdown_buf[i] == 1)
                .map(|i| 1 << i)
                .sum();
            free_nodes.clear();
            free_nodes.extend((0..n).filter(|&i| countdown_buf[i] != 1));
            let graph = cfg.protocol.graph();
            let mut edge_k: u32 = 0;
            // Every activation set: forced nodes plus any subset of the
            // rest (skipping the empty total set).
            for subset in 0..(1u32 << free_nodes.len()) {
                let mut mask = forced;
                for (k, &i) in free_nodes.iter().enumerate() {
                    if subset >> k & 1 == 1 {
                        mask |= 1 << i;
                    }
                }
                if mask == 0 {
                    continue;
                }
                next_label_idx.copy_from_slice(&label_idx_buf);
                if cfg.track_outputs {
                    next_out_words.copy_from_slice(&out_words_buf);
                }
                for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                    // Buffered reaction probe: all reads come from the
                    // pre-step `labeling_buf`, so the per-node commits into
                    // next_label_idx cannot corrupt later probes.
                    let y = cfg.protocol.apply_buffered(
                        i,
                        &labeling_buf,
                        cfg.inputs[i],
                        &mut in_buf,
                        &mut react_buf,
                    );
                    for (slot, &eid) in react_buf.iter().zip(graph.out_edges(i)) {
                        let Some(&idx) = cfg.label_index.get(slot) else {
                            return Err(VerifyError::BadParameters {
                                what: format!(
                                    "node {i} emitted the label {slot:?}, which is \
                                     outside the declared alphabet"
                                ),
                            });
                        };
                        next_label_idx[eid] = idx;
                    }
                    if cfg.track_outputs {
                        next_out_words[i] = y;
                    }
                }
                let interesting = if cfg.track_outputs {
                    next_out_words != out_words_buf
                } else {
                    next_label_idx != label_idx_buf
                };
                // Pack the successor: labels, then countdowns (reset to r
                // for activated nodes, decremented otherwise).
                state_buf.fill(0);
                for (k, &idx) in next_label_idx.iter().enumerate() {
                    pack(&mut state_buf, k * lw as usize, lw, u64::from(idx));
                }
                for (i, &cd_now) in countdown_buf.iter().enumerate() {
                    let cd = if mask >> i & 1 == 1 {
                        cfg.r
                    } else {
                        cd_now - 1
                    };
                    pack(
                        &mut state_buf,
                        e * lw as usize + i * cw as usize,
                        cw,
                        u64::from(cd - 1),
                    );
                }
                let fp = fingerprint(&state_buf, &next_out_words);
                let rec = &mut out.shards[shard_of(fp)];
                rec.slots.push(out.meta.len() as u32);
                // n ≤ 16 bounds the per-source fan-out below 2^16 edges,
                // so the key packs (dense source, edge index) exactly.
                rec.keys.push(((u as u64) << 16) | u64::from(edge_k));
                rec.fps.push(fp);
                rec.words.extend_from_slice(&state_buf);
                rec.aux.extend_from_slice(&next_out_words);
                out.meta
                    .push(mask | if interesting { META_INTERESTING } else { 0 });
                edge_k += 1;
            }
            out.counts.push(edge_k);
        }
        Ok(out)
    }

    /// Phase 2: replays shard `s`'s record stream — chunks in order,
    /// records in order — against its fingerprint index. Exactly one
    /// worker claims each shard, so interning is single-writer and the
    /// local id sequence is deterministic.
    fn intern_shard(&self, s: usize, chunks: &[ChunkOut], want_resolved: bool) -> ShardIntern {
        let (w, al) = (self.cfg.words_per_state, self.cfg.aux_len);
        let mut shard = self.index.write(s);
        let mut out = ShardIntern {
            resolved: Vec::with_capacity(chunks.len()),
            fresh: Vec::new(),
        };
        for chunk in chunks {
            let rec = &chunk.shards[s];
            let mut res = Vec::with_capacity(if want_resolved { rec.fps.len() } else { 0 });
            for (i, &fp) in rec.fps.iter().enumerate() {
                let row = &rec.words[i * w..(i + 1) * w];
                let aux = &rec.aux[i * al..(i + 1) * al];
                let (local, fresh) = shard.intern(fp, row, aux);
                if fresh {
                    out.fresh
                        .push((rec.keys[i], local, self.cfg.free_count(row)));
                }
                if want_resolved {
                    res.push(local);
                }
            }
            out.resolved.push(res);
        }
        out
    }

    /// Phase 3a: merges every shard's fresh states by stream key — the
    /// position of the edge (or seed labeling) that first discovered them
    /// — and assigns dense ids in that order. This is exactly the order a
    /// sequential scan interns in, so dense numbering is identical for
    /// every thread count.
    fn assign_dense(
        &mut self,
        interned: &[ShardIntern],
        limits: &Limits,
    ) -> Result<(), VerifyError> {
        let cap = limits.max_states.min(u32::MAX as usize - 1);
        let mut guards: Vec<_> = (0..SHARD_COUNT).map(|s| self.index.write(s)).collect();
        let mut heads: BinaryHeap<Reverse<(u64, usize)>> = interned
            .iter()
            .enumerate()
            .filter(|(_, si)| !si.fresh.is_empty())
            .map(|(s, si)| Reverse((si.fresh[0].0, s)))
            .collect();
        let mut pos = [0usize; SHARD_COUNT];
        while let Some(Reverse((_, s))) = heads.pop() {
            let (_, local, free) = interned[s].fresh[pos[s]];
            if self.n_states >= cap {
                return Err(VerifyError::TooManyStates {
                    limit: limits.max_states,
                });
            }
            guards[s].push_dense(self.n_states as u32);
            self.dense_ids.push(pack_state_id(s, local));
            self.free_bits.push(free);
            self.n_states += 1;
            pos[s] += 1;
            if let Some(&(key, _, _)) = interned[s].fresh.get(pos[s]) {
                heads.push(Reverse((key, s)));
            }
        }
        Ok(())
    }

    /// Phase 3b: scatters one chunk's resolved targets — now that every
    /// `(shard, local)` id has a dense number — into a dense CSR target
    /// segment.
    fn resolve_chunk(&self, chunk: &ChunkOut, interned: &[ShardIntern], c: usize) -> Vec<u32> {
        let guards = self.index.read_all();
        let mut targets = vec![0u32; chunk.meta.len()];
        for (s, (rec, si)) in chunk.shards.iter().zip(interned).enumerate() {
            for (&slot, &local) in rec.slots.iter().zip(&si.resolved[c]) {
                targets[slot as usize] = guards[s].dense_of(local);
            }
        }
        targets
    }

    /// Condenses the explored product graph: the parallel trim +
    /// Forward–Backward engine of [`stateless_core::scc`] on
    /// [`Limits::threads`] workers, or the serial Tarjan reference —
    /// both in the canonical numbering, so the choice (and the thread
    /// count) never changes a verdict or a witness.
    fn sccs(&self, backend: SccBackend) -> Vec<u32> {
        match backend {
            SccBackend::ForwardBackward => {
                scc::condense(&self.edge_offsets, &self.edge_targets, self.cfg.threads)
            }
            SccBackend::Tarjan => scc::tarjan(&self.edge_offsets, &self.edge_targets),
        }
    }

    /// Finds a cycle through an "interesting" intra-SCC edge, as a
    /// witness. The *first* such edge suffices — its endpoints share an
    /// SCC, so the closing path always exists and one BFS settles the
    /// whole component; the BFS bookkeeping is flat per-state arrays
    /// (predecessor + mask, plus a reusable queue), not hashed maps.
    fn witness(&self, comp: &[u32]) -> Option<CycleWitness<L>> {
        let (u, v, mask) = self.first_interesting_intra_scc_edge(comp)?;
        let mut prev: Vec<u32> = vec![u32::MAX; self.n_states];
        let mut prev_mask: Vec<u32> = vec![0; self.n_states];
        let mut queue: VecDeque<u32> = VecDeque::new();
        // BFS from v back to u inside the component.
        queue.push_back(v as u32);
        let mut found = v == u;
        'bfs: while let Some(w) = queue.pop_front() {
            let wu = w as usize;
            for c in self.edge_offsets[wu]..self.edge_offsets[wu + 1] {
                let x = self.edge_targets[c] as usize;
                if comp[x] == comp[u] && x != v && prev[x] == u32::MAX {
                    prev[x] = w;
                    prev_mask[x] = self.edge_meta[c] & 0xFFFF;
                    if x == u {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(x as u32);
                }
            }
        }
        debug_assert!(found, "u and v share an SCC, so v reaches u");
        if !found {
            return None;
        }
        // Reconstruct u →(mask) v → … → u.
        let mut masks = vec![mask];
        let mut path_rev = Vec::new();
        let mut at = u;
        while at != v {
            path_rev.push(prev_mask[at]);
            at = prev[at] as usize;
        }
        masks.extend(path_rev.into_iter().rev());
        let n = self.cfg.n;
        let schedule = masks
            .into_iter()
            .map(|m| (0..n).filter(|&i| m >> i & 1 == 1).collect())
            .collect();
        Some(CycleWitness {
            labeling: self.decode_labeling(u),
            schedule,
        })
    }

    /// Finds the first (in CSR edge order) labeling/output-changing edge
    /// whose endpoints share a component. The scan is chunked over fixed
    /// state ranges and the chunks run on [`Limits::threads`] workers;
    /// taking the earliest non-empty chunk reproduces the serial scan's
    /// answer exactly (chunk boundaries are constants, never derived
    /// from the thread count), and a shared low-water mark lets workers
    /// skip chunks that can no longer win.
    fn first_interesting_intra_scc_edge(&self, comp: &[u32]) -> Option<(usize, usize, u32)> {
        let chunks = self.n_states.div_ceil(SCAN_CHUNK_STATES);
        let best = AtomicUsize::new(usize::MAX);
        let scan = |c: usize| -> Option<(usize, usize, u32)> {
            if c > best.load(Ordering::Relaxed) {
                return None;
            }
            let start = c * SCAN_CHUNK_STATES;
            let end = (start + SCAN_CHUNK_STATES).min(self.n_states);
            for u in start..end {
                for k in self.edge_offsets[u]..self.edge_offsets[u + 1] {
                    let meta = self.edge_meta[k];
                    if meta & META_INTERESTING == 0 {
                        continue;
                    }
                    let v = self.edge_targets[k] as usize;
                    if comp[u] == comp[v] {
                        best.fetch_min(c, Ordering::Relaxed);
                        return Some((u, v, meta & 0xFFFF));
                    }
                }
            }
            None
        };
        run_indexed(self.cfg.threads.min(chunks), chunks, scan)
            .into_iter()
            .flatten()
            .next()
    }

    /// Decodes state `u`'s labeling from its shard arena.
    fn decode_labeling(&self, u: usize) -> Vec<L> {
        let (s, local) = unpack_state_id(self.dense_ids[u]);
        let shard = self.index.read(s);
        let row = shard.row(local);
        let lw = self.cfg.label_width;
        (0..self.cfg.e)
            .map(|k| self.cfg.alphabet[unpack(row, k * lw as usize, lw) as usize].clone())
            .collect()
    }

    fn stats(&self) -> ExploreStats {
        ExploreStats {
            states: self.n_states,
            edges: self.edge_targets.len(),
            words_per_state: self.cfg.words_per_state,
            state_bytes: self.n_states * (self.cfg.words_per_state + self.cfg.aux_len) * 8,
            edge_bytes: self.edge_offsets.len() * std::mem::size_of::<usize>()
                + self.edge_targets.len() * 4
                + self.edge_meta.len() * 4,
        }
    }
}

/// Decides **label** r-stabilization of `protocol` under the given inputs,
/// exactly, by exploring the full product graph over `alphabet`-labelings.
///
/// `alphabet` must be closed under the reactions; a reaction emitting a
/// label outside it is reported as [`VerifyError::BadParameters`].
///
/// See the [module docs](self) for the memory model (packed states,
/// sharded fingerprint interning, CSR edges, Tarjan SCC) and the
/// determinism contract of the parallel explorer ([`Limits::threads`]).
///
/// # Errors
///
/// [`VerifyError::TooManyStates`] / [`VerifyError::TooManyEdges`] if the
/// product graph exceeds the limits; [`VerifyError::BadParameters`] for
/// `r = 0`, oversized graphs, or a non-closed alphabet.
pub fn verify_label_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    verify_label_stabilization_with_stats(protocol, inputs, alphabet, r, limits).map(|(v, _)| v)
}

/// [`verify_label_stabilization`], also reporting the size of the explored
/// product graph ([`ExploreStats`]) — the figures behind the
/// `verify_scaling` perf section.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_label_stabilization_with_stats<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<(Verdict<L>, ExploreStats), VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, false, limits)?;
    let comp = ex.sccs(limits.scc);
    let verdict = match ex.witness(&comp) {
        Some(w) => Verdict::NotStabilizing(w),
        None => Verdict::Stabilizing,
    };
    Ok((verdict, ex.stats()))
}

/// Explores the product graph of a **label**-stabilization query and
/// returns its CSR adjacency (`edge_offsets`, `edge_targets`) without
/// condensing it — the hook the `verify_scaling` perf rows use to time
/// the SCC phase in isolation, per thread count, on the real graph.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
#[doc(hidden)]
pub fn product_graph_csr<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<(Vec<usize>, Vec<u32>), VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, false, limits)?;
    Ok((ex.edge_offsets, ex.edge_targets))
}

/// Decides **output** r-stabilization (the weaker condition: outputs must
/// converge, labels may dance forever). Same exploration with outputs in
/// the state.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
pub fn verify_output_stabilization<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = Explorer::explore(protocol, inputs, alphabet, r, true, limits)?;
    let comp = ex.sccs(limits.scc);
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

// ---------------------------------------------------------------------------
// Naive reference explorer (owned-`Vec` interning + Kosaraju), kept for
// differential testing only.
// ---------------------------------------------------------------------------

/// One product-graph vertex of the naive explorer: `(labeling, countdown,
/// outputs)` (outputs all-zero when not tracked).
type ProductState<L> = (Vec<L>, Vec<u8>, Vec<Output>);

struct NaiveExplorer<'p, L: Label> {
    protocol: &'p Protocol<L>,
    inputs: Vec<Input>,
    r: u8,
    track_outputs: bool,
    index: HashMap<ProductState<L>, usize>,
    states: Vec<ProductState<L>>,
    /// edges[u] = (v, interesting: labeling/output changed, activation mask)
    edges: Vec<Vec<(usize, bool, u32)>>,
    in_buf: Vec<L>,
    out_buf: Vec<L>,
}

impl<'p, L: Label> NaiveExplorer<'p, L> {
    fn explore(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: Limits,
    ) -> Result<Self, VerifyError> {
        let n = protocol.node_count();
        if n > 16 {
            return Err(VerifyError::BadParameters {
                what: format!("exhaustive verification supports n ≤ 16, got {n}"),
            });
        }
        if r == 0 {
            return Err(VerifyError::BadParameters {
                what: "r must be ≥ 1".into(),
            });
        }
        let mut ex = NaiveExplorer {
            protocol,
            inputs: inputs.to_vec(),
            r,
            track_outputs,
            index: HashMap::new(),
            states: Vec::new(),
            edges: Vec::new(),
            in_buf: Vec::new(),
            out_buf: Vec::new(),
        };
        for labeling in all_labelings(alphabet, protocol.edge_count()) {
            let state = (labeling, vec![r; n], vec![0; n]);
            ex.intern(state, limits)?;
        }
        let mut cursor = 0;
        while cursor < ex.states.len() {
            ex.expand(cursor, limits)?;
            cursor += 1;
        }
        Ok(ex)
    }

    fn intern(&mut self, state: ProductState<L>, limits: Limits) -> Result<usize, VerifyError> {
        if let Some(&id) = self.index.get(&state) {
            return Ok(id);
        }
        if self.states.len() >= limits.max_states {
            return Err(VerifyError::TooManyStates {
                limit: limits.max_states,
            });
        }
        let id = self.states.len();
        self.index.insert(state.clone(), id);
        self.states.push(state);
        self.edges.push(Vec::new());
        Ok(id)
    }

    fn expand(&mut self, u: usize, limits: Limits) -> Result<(), VerifyError> {
        let n = self.protocol.node_count();
        let (labeling, countdown, outputs) = self.states[u].clone();
        let forced: u32 = (0..n).filter(|&i| countdown[i] == 1).map(|i| 1 << i).sum();
        let free: Vec<usize> = (0..n).filter(|&i| countdown[i] != 1).collect();
        for subset in 0..(1u32 << free.len()) {
            let mut mask = forced;
            for (k, &i) in free.iter().enumerate() {
                if subset >> k & 1 == 1 {
                    mask |= 1 << i;
                }
            }
            if mask == 0 {
                continue;
            }
            let mut next_labeling = labeling.clone();
            let mut next_outputs = outputs.clone();
            let graph = self.protocol.graph();
            for i in (0..n).filter(|&i| mask >> i & 1 == 1) {
                let y = self.protocol.apply_buffered(
                    i,
                    &labeling,
                    self.inputs[i],
                    &mut self.in_buf,
                    &mut self.out_buf,
                );
                for (slot, &e) in self.out_buf.iter().zip(graph.out_edges(i)) {
                    next_labeling[e] = slot.clone();
                }
                next_outputs[i] = y;
            }
            let next_countdown: Vec<u8> = (0..n)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        self.r
                    } else {
                        countdown[i] - 1
                    }
                })
                .collect();
            let interesting = if self.track_outputs {
                next_outputs != outputs
            } else {
                next_labeling != labeling
            };
            if !self.track_outputs {
                next_outputs = vec![0; n]; // outputs not part of the state
            }
            let v = self.intern((next_labeling, next_countdown, next_outputs), limits)?;
            self.edges[u].push((v, interesting, mask));
        }
        Ok(())
    }

    /// Kosaraju SCC; returns the component id per state.
    fn sccs(&self) -> Vec<usize> {
        let n = self.states.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            seen[start] = true;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < self.edges[u].len() {
                    let v = self.edges[u][*next].0;
                    *next += 1;
                    if !seen[v] {
                        seen[v] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, _, _) in outs {
                redges[v].push(u);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(u) = stack.pop() {
                for &v in &redges[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = c;
                        stack.push(v);
                    }
                }
            }
            c += 1;
        }
        comp
    }

    fn witness(&self, comp: &[usize]) -> Option<CycleWitness<L>> {
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, interesting, mask) in outs {
                if !interesting || comp[u] != comp[v] {
                    continue;
                }
                let mut prev: HashMap<usize, (usize, u32)> = HashMap::new();
                let mut queue = VecDeque::from([v]);
                let mut found = v == u;
                while let Some(w) = queue.pop_front() {
                    if found {
                        break;
                    }
                    for &(x, _, m) in &self.edges[w] {
                        if comp[x] == comp[u] && x != v && !prev.contains_key(&x) {
                            prev.insert(x, (w, m));
                            if x == u {
                                found = true;
                                break;
                            }
                            queue.push_back(x);
                        }
                    }
                }
                if !found && v != u {
                    continue;
                }
                let mut masks = vec![mask];
                let mut path_rev = Vec::new();
                let mut at = u;
                while at != v {
                    let &(p, m) = prev.get(&at).expect("BFS reached u");
                    path_rev.push(m);
                    at = p;
                }
                masks.extend(path_rev.into_iter().rev());
                let n = self.protocol.node_count();
                let schedule = masks
                    .into_iter()
                    .map(|m| (0..n).filter(|&i| m >> i & 1 == 1).collect())
                    .collect();
                return Some(CycleWitness {
                    labeling: self.states[u].0.clone(),
                    schedule,
                });
            }
        }
        None
    }
}

/// Reference implementation of [`verify_label_stabilization`]: the
/// original explorer interning owned `(Vec<L>, Vec<u8>, Vec<Output>)`
/// states in a `HashMap` and running Kosaraju over `Vec<Vec<…>>` edges.
/// Kept for differential testing and as the baseline in the
/// `verify_scaling` perf section; the two must agree on every verdict.
///
/// # Errors
///
/// As for [`verify_label_stabilization`].
#[doc(hidden)]
pub fn verify_label_stabilization_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = NaiveExplorer::explore(protocol, inputs, alphabet, r, false, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

/// Reference implementation of [`verify_output_stabilization`]; see
/// [`verify_label_stabilization_naive`].
///
/// # Errors
///
/// As for [`verify_output_stabilization`].
#[doc(hidden)]
pub fn verify_output_stabilization_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
) -> Result<Verdict<L>, VerifyError> {
    let ex = NaiveExplorer::explore(protocol, inputs, alphabet, r, true, limits)?;
    let comp = ex.sccs();
    match ex.witness(&comp) {
        Some(w) => Ok(Verdict::NotStabilizing(w)),
        None => Ok(Verdict::Stabilizing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::reaction::{ConstReaction, FnReaction};

    fn rotate_ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 42)))
            .build()
            .unwrap()
    }

    #[test]
    fn constant_protocol_is_stabilizing_for_all_r() {
        let p = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3 {
            let v = verify_label_stabilization(&p, &[0; 3], &[false, true], r, Limits::default())
                .unwrap();
            assert!(v.is_stabilizing(), "r = {r}");
        }
    }

    #[test]
    fn rotation_is_not_label_stabilizing_but_output_stabilizes() {
        let p = rotate_ring(3);
        let label =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        match label {
            Verdict::NotStabilizing(w) => {
                assert!(!w.schedule.is_empty());
            }
            Verdict::Stabilizing => panic!("rotation never label-stabilizes"),
        }
        let output =
            verify_output_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        assert!(output.is_stabilizing(), "constant outputs converge");
    }

    #[test]
    fn witness_schedule_really_oscillates() {
        let p = rotate_ring(3);
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 3, Limits::default()).unwrap();
        let Verdict::NotStabilizing(w) = v else {
            panic!("expected a witness")
        };
        // Replay the witness: labels must change within a few script laps
        // and the labeling must return to the start each lap (it is a
        // cycle in the product graph).
        let mut sim = Simulation::new(&p, &[0; 3], w.labeling.clone()).unwrap();
        let mut sched = Scripted::cycle(w.schedule.clone());
        sched.validate(3).expect("witness names real nodes");
        let mut changed = false;
        let mut active = Vec::new();
        for _ in 0..w.schedule.len() {
            let before = sim.labeling().to_vec();
            sched.activations_into(sim.time() + 1, 3, &mut active);
            sim.step_with(&active);
            changed |= before != sim.labeling();
        }
        assert!(changed, "labels changed along the cycle");
        assert_eq!(sim.labeling(), &w.labeling[..], "cycle closes");
    }

    #[test]
    fn limits_are_enforced() {
        let p = rotate_ring(4);
        let err = verify_label_stabilization(
            &p,
            &[0; 4],
            &[false, true],
            3,
            Limits {
                max_states: 10,
                ..Limits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::TooManyStates { limit: 10 });
    }

    #[test]
    fn edge_limits_are_enforced() {
        let p = rotate_ring(4);
        let err = verify_label_stabilization(
            &p,
            &[0; 4],
            &[false, true],
            3,
            Limits {
                max_edges: 100,
                ..Limits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::TooManyEdges { limit: 100 });
    }

    #[test]
    fn r_zero_is_rejected() {
        let p = rotate_ring(3);
        assert!(matches!(
            verify_label_stabilization(&p, &[0; 3], &[false, true], 0, Limits::default()),
            Err(VerifyError::BadParameters { .. })
        ));
    }

    #[test]
    fn non_closed_alphabet_is_rejected() {
        // The reaction emits `true`, which the declared alphabet lacks.
        let p = Protocol::builder(topology::unidirectional_ring(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, _: &[bool], _| (vec![true], 0)))
            .build()
            .unwrap();
        let err =
            verify_label_stabilization(&p, &[0; 3], &[false], 2, Limits::default()).unwrap_err();
        assert!(matches!(err, VerifyError::BadParameters { .. }), "{err:?}");
    }

    #[test]
    fn duplicate_alphabet_entries_do_not_inflate_the_state_space() {
        let p = rotate_ring(3);
        let (_, plain) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        let (_, duped) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true, false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(plain.states, duped.states);
    }

    #[test]
    fn packed_explorer_matches_naive_on_verdicts() {
        // Hand-picked spread: stabilizing and oscillating, label and
        // output mode, r from 1 to 3 (the proptests in
        // tests/differential.rs cover random protocols).
        let rot = rotate_ring(3);
        let constp = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        for r in 1..=3u8 {
            for p in [&rot, &constp] {
                let fast =
                    verify_label_stabilization(p, &[0; 3], &[false, true], r, Limits::default())
                        .unwrap();
                let naive = verify_label_stabilization_naive(
                    p,
                    &[0; 3],
                    &[false, true],
                    r,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(fast.is_stabilizing(), naive.is_stabilizing(), "r = {r}");
                let fast_o =
                    verify_output_stabilization(p, &[0; 3], &[false, true], r, Limits::default())
                        .unwrap();
                let naive_o = verify_output_stabilization_naive(
                    p,
                    &[0; 3],
                    &[false, true],
                    r,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(fast_o.is_stabilizing(), naive_o.is_stabilizing(), "r = {r}");
            }
        }
    }

    #[test]
    fn verdicts_witnesses_and_stats_are_identical_across_thread_counts() {
        // The hard determinism invariant: not just equal verdicts, but
        // bit-identical witnesses and state/edge counts for every worker
        // count (tests/differential.rs covers random protocols).
        let p = rotate_ring(4);
        let at = |threads: usize| {
            let limits = Limits {
                threads,
                ..Limits::default()
            };
            let label =
                verify_label_stabilization_with_stats(&p, &[0; 4], &[false, true], 3, limits)
                    .unwrap();
            let output =
                verify_output_stabilization(&p, &[0; 4], &[false, true], 3, limits).unwrap();
            (label, output)
        };
        let base = at(1);
        for threads in [2, 4, 7] {
            assert_eq!(base, at(threads), "threads = {threads}");
        }
    }

    #[test]
    fn scc_backends_agree_on_verdicts_witnesses_and_stats() {
        // The FB engine must be a drop-in for the Tarjan reference: same
        // verdicts, same witnesses bit for bit, same stats — at any
        // thread count (tests/differential.rs covers random protocols).
        let rot = rotate_ring(4);
        let constp = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 2))
            .build()
            .unwrap();
        let run = |p: &Protocol<bool>, n: usize, scc: SccBackend, threads: usize| {
            let limits = Limits {
                scc,
                threads,
                ..Limits::default()
            };
            let inputs = vec![0; n];
            let label =
                verify_label_stabilization_with_stats(p, &inputs, &[false, true], 3, limits)
                    .unwrap();
            let output =
                verify_output_stabilization(p, &inputs, &[false, true], 3, limits).unwrap();
            (label, output)
        };
        for (p, n) in [(&rot, 4), (&constp, 3)] {
            let reference = run(p, n, SccBackend::Tarjan, 1);
            for threads in [1, 2, 4] {
                assert_eq!(
                    reference,
                    run(p, n, SccBackend::ForwardBackward, threads),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn stats_report_packed_sizes() {
        let p = rotate_ring(3);
        let (_, stats) = verify_label_stabilization_with_stats(
            &p,
            &[0; 3],
            &[false, true],
            2,
            Limits::default(),
        )
        .unwrap();
        // 3 label bits + 3 countdown bits pack into one word.
        assert_eq!(stats.words_per_state, 1);
        assert!(stats.states > 0 && stats.edges > 0);
        assert_eq!(stats.state_bytes, stats.states * 8);
        // Reachable closure of 8 labelings × countdowns ∈ {1,2}³ minus
        // combinations the dynamics never produce; at least all 8 initial
        // states exist.
        assert!(stats.states >= 8);
    }
}
