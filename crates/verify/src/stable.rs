//! Stable-labeling enumeration: the hypothesis side of Theorem 3.1.

use stateless_core::convergence::{all_labelings, par_sweep_init};
use stateless_core::label::Label;
use stateless_core::prelude::*;

/// Enumerates every stable labeling (fixed point of all reactions) of
/// `protocol` under `inputs`, over the given label alphabet.
///
/// The `|Σ|^|E|` candidate labelings are probed in parallel across all
/// cores through the allocation-free buffered reaction path
/// ([`Protocol::is_stable_labeling_buffered`] with per-worker scratch via
/// [`par_sweep_init`]); the result order matches the [`all_labelings`]
/// enumeration, so it is deterministic.
///
/// Theorem 3.1 says: **two or more** results here ⟹ the protocol is not
/// label (n−1)-stabilizing.
///
/// # Errors
///
/// Returns length-validation errors up front. A reaction that misbehaves
/// on the buffered path panics (see
/// [`Reaction::react_into`](stateless_core::reaction::Reaction::react_into)).
pub fn enumerate_stable_labelings<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
) -> Result<Vec<Vec<L>>, CoreError> {
    // Validate the input/labeling lengths once, through the validating
    // probe on the first candidate; the sweep itself then runs the
    // buffered probe with reusable per-worker scratch buffers.
    if let Some(labeling) = all_labelings(alphabet, protocol.edge_count()).next() {
        protocol.is_stable_labeling(&labeling, inputs)?;
    }
    let probed = par_sweep_init(
        || (Vec::new(), Vec::new()),
        all_labelings(alphabet, protocol.edge_count()),
        |(in_buf, out_buf), labeling| {
            if protocol.is_stable_labeling_buffered(&labeling, inputs, in_buf, out_buf) {
                Some(labeling)
            } else {
                None
            }
        },
    );
    Ok(probed.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::reaction::FnReaction;

    /// The Example 1 reaction, reconstructed locally to avoid a dependency
    /// cycle with `stateless-protocols` (which dev-depends on this crate).
    fn example1(n: usize) -> Protocol<bool> {
        let deg = n - 1;
        Protocol::builder(topology::clique(n), 1.0)
            .uniform_reaction(FnReaction::new(move |_, incoming: &[bool], _| {
                let bit = incoming.iter().any(|&b| b);
                (vec![bit; deg], u64::from(bit))
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn example1_has_exactly_two_stable_labelings() {
        for n in [3usize, 4] {
            let p = example1(n);
            let stable = enumerate_stable_labelings(&p, &vec![0; n], &[false, true]).unwrap();
            assert_eq!(stable.len(), 2, "n = {n}");
            assert!(stable.contains(&vec![false; n * (n - 1)]));
            assert!(stable.contains(&vec![true; n * (n - 1)]));
        }
    }

    #[test]
    fn rotation_has_uniform_stable_labelings_only() {
        let p = Protocol::builder(topology::unidirectional_ring(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 0)))
            .build()
            .unwrap();
        let stable = enumerate_stable_labelings(&p, &[0; 3], &[false, true]).unwrap();
        // Fixed points of rotation: constant labelings.
        assert_eq!(stable.len(), 2);
    }
}
