//! Fault-placement sweeps: verify a protocol under **every** placement
//! of `f` Byzantine nodes and tabulate the verdicts.
//!
//! A single [`Limits::faults`] run answers "does the protocol stabilize
//! with *these* nodes faulty?"; robustness claims quantify over the
//! placement too. [`sweep_byzantine_placements`] enumerates all
//! `C(n − |exclude|, f)` placements in lexicographic order (skipping
//! `exclude`d nodes — e.g. a BFS root that must stay correct), runs the
//! exact verifier per placement on a
//! [`par_sweep`](stateless_core::convergence::par_sweep) worker pool,
//! and returns one [`PlacementVerdict`] row per placement, in placement
//! order. Every `NotStabilizing` row carries a concrete replayable
//! adversary strategy ([`CycleWitness::adversary`]).
//! [`sweep_crash_placements`] is the crash-fault twin: same enumeration,
//! same driver, with each placement's nodes crashed (frozen labels)
//! instead of adversarial.

use crate::product::{verify_label_stabilization, Limits, Verdict, VerifyError};
use stateless_core::convergence::par_sweep;
use stateless_core::prelude::*;

#[allow(unused_imports)] // rustdoc link target
use crate::product::CycleWitness;

/// One row of a fault-placement sweep: which nodes were Byzantine, and
/// the exact verdict under that placement.
#[derive(Debug, Clone)]
pub struct PlacementVerdict<L: Label> {
    /// The Byzantine node ids, ascending.
    pub placement: Vec<NodeId>,
    /// The exact ∀-schedule ∀-strategy verdict for this placement.
    pub verdict: Verdict<L>,
}

/// All size-`f` subsets of `{0, …, n−1} \ exclude`, each ascending, in
/// lexicographic order — the placement enumeration behind
/// [`sweep_byzantine_placements`]. Empty when fewer than `f` nodes are
/// eligible; the single empty placement when `f == 0`.
pub fn byzantine_placements(n: usize, f: usize, exclude: &[NodeId]) -> Vec<Vec<NodeId>> {
    let eligible: Vec<NodeId> = (0..n).filter(|i| !exclude.contains(i)).collect();
    let mut out = Vec::new();
    if f > eligible.len() {
        return out;
    }
    // Odometer over index combinations of `eligible`.
    let mut idx: Vec<usize> = (0..f).collect();
    loop {
        out.push(idx.iter().map(|&k| eligible[k]).collect());
        // Advance the rightmost index that still has room.
        let mut i = f;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] + (f - i) < eligible.len() {
                idx[i] += 1;
                for j in i + 1..f {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Verifies **label** r-stabilization of `protocol` under every placement
/// of `f` Byzantine nodes outside `exclude`, in parallel over placements.
///
/// `limits.faults` is overridden per placement; every other limit (state
/// caps, thread count, SCC backend, symmetry mode) applies to each run
/// unchanged. Rows come back in the lexicographic placement order of
/// [`byzantine_placements`], so the table is deterministic.
///
/// # Errors
///
/// The first placement (in placement order) whose verification fails
/// surfaces its [`VerifyError`]; `f = 0` runs exactly one fault-free
/// verification.
pub fn sweep_byzantine_placements<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
) -> Result<Vec<PlacementVerdict<L>>, VerifyError> {
    sweep_placements(
        protocol,
        inputs,
        alphabet,
        r,
        limits,
        f,
        exclude,
        FaultModel::byzantine,
    )
}

/// Verifies **label** r-stabilization of `protocol` under every placement
/// of `f` **crash** nodes outside `exclude` — the crash twin of
/// [`sweep_byzantine_placements`], with the same placement enumeration,
/// the same parallel driver, and the same deterministic row order. A
/// crashed node's reaction is replaced by the single
/// keep-current-labels choice, so each placement's product graph is far
/// smaller than its Byzantine counterpart's.
///
/// # Errors
///
/// As for [`sweep_byzantine_placements`].
pub fn sweep_crash_placements<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
) -> Result<Vec<PlacementVerdict<L>>, VerifyError> {
    sweep_placements(
        protocol,
        inputs,
        alphabet,
        r,
        limits,
        f,
        exclude,
        FaultModel::crash,
    )
}

/// The shared sweep driver: enumerate placements, build each placement's
/// fault model with `model` ([`FaultModel::byzantine`] or
/// [`FaultModel::crash`]), and verify per placement on the
/// [`par_sweep`] pool.
#[allow(clippy::too_many_arguments)] // private driver behind two thin public wrappers
fn sweep_placements<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
    model: fn(&[NodeId]) -> Result<FaultModel, CoreError>,
) -> Result<Vec<PlacementVerdict<L>>, VerifyError> {
    let placements = byzantine_placements(protocol.node_count(), f, exclude);
    let rows = par_sweep(placements, |placement: Vec<NodeId>| {
        let faults = model(&placement).map_err(|e| VerifyError::BadParameters {
            what: e.to_string(),
        })?;
        let verdict = verify_label_stabilization(
            protocol,
            inputs,
            alphabet,
            r,
            Limits {
                faults,
                ..limits.clone()
            },
        )?;
        Ok(PlacementVerdict { placement, verdict })
    });
    rows.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_enumerate_lexicographically_and_skip_excluded() {
        assert_eq!(
            byzantine_placements(4, 2, &[]),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(
            byzantine_placements(4, 1, &[0]),
            vec![vec![1], vec![2], vec![3]]
        );
        assert_eq!(byzantine_placements(3, 0, &[]), vec![Vec::<NodeId>::new()]);
        assert!(byzantine_placements(3, 3, &[0]).is_empty());
    }
}
