//! Fault-placement sweeps: verify a protocol under **every** placement
//! of `f` Byzantine nodes and tabulate the verdicts.
//!
//! A single [`Limits::faults`] run answers "does the protocol stabilize
//! with *these* nodes faulty?"; robustness claims quantify over the
//! placement too. [`sweep_byzantine_placements`] enumerates all
//! `C(n − |exclude|, f)` placements in lexicographic order (skipping
//! `exclude`d nodes — e.g. a BFS root that must stay correct), runs the
//! exact verifier per placement on a
//! [`par_sweep`](stateless_core::convergence::par_sweep) worker pool,
//! and returns one [`PlacementVerdict`] row per placement, in placement
//! order. Every `NotStabilizing` row carries a concrete replayable
//! adversary strategy ([`CycleWitness::adversary`]).
//! [`sweep_crash_placements`] is the crash-fault twin: same enumeration,
//! same driver, with each placement's nodes crashed (frozen labels)
//! instead of adversarial.
//!
//! The `_cached` variants ([`sweep_byzantine_placements_cached`] /
//! [`sweep_crash_placements_cached`]) route every placement through a
//! shared [`VerdictCache`]: a placement whose instance fingerprint is
//! already memoized is served without re-exploring, and every
//! [`CachedPlacementVerdict`] row reports how it was answered
//! (hit / miss / resumed) plus the run's [`ExploreStats`] — the
//! workhorse of the `verifyd` batch service, where repeated job files
//! make warm sweeps almost entirely hits.

use crate::cache::{CacheOutcome, VerdictCache};
use crate::product::{
    verify_label_stabilization_with_stats, ExploreStats, Limits, Verdict, VerifyError,
};
use stateless_core::convergence::par_sweep;
use stateless_core::prelude::*;

#[allow(unused_imports)] // rustdoc link target
use crate::product::CycleWitness;

/// One row of a fault-placement sweep: which nodes were Byzantine, and
/// the exact verdict under that placement.
#[derive(Debug, Clone)]
pub struct PlacementVerdict<L: Label> {
    /// The Byzantine node ids, ascending.
    pub placement: Vec<NodeId>,
    /// The exact ∀-schedule ∀-strategy verdict for this placement.
    pub verdict: Verdict<L>,
}

/// One row of a cache-routed fault-placement sweep: the
/// [`PlacementVerdict`] fields plus the exploration stats and how the
/// [`VerdictCache`] answered this placement.
#[derive(Debug, Clone)]
pub struct CachedPlacementVerdict<L: Label> {
    /// The faulty node ids, ascending.
    pub placement: Vec<NodeId>,
    /// The exact ∀-schedule ∀-strategy verdict for this placement —
    /// bit-identical whether served from cache or computed.
    pub verdict: Verdict<L>,
    /// The exploration stats of the run that computed this verdict
    /// (a hit reports the original computing run's stats).
    pub stats: ExploreStats,
    /// Whether this row was a cache hit, a fresh computation, or a
    /// resumed `Partial`.
    pub cache: CacheOutcome,
}

/// All size-`f` subsets of `{0, …, n−1} \ exclude`, each ascending, in
/// lexicographic order — the placement enumeration behind
/// [`sweep_byzantine_placements`]. Empty when fewer than `f` nodes are
/// eligible; the single empty placement when `f == 0` (even with every
/// node excluded — the fault-free instance needs no eligible nodes).
///
/// `exclude` is normalized first: duplicate ids and ids outside
/// `0..n` are ignored, so the result is always exactly the
/// `C(n − |exclude ∩ {0, …, n−1}|, f)` set-difference subsets —
/// never a silently skewed enumeration from a sloppy exclusion list.
pub fn byzantine_placements(n: usize, f: usize, exclude: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut excluded: Vec<NodeId> = exclude.iter().copied().filter(|&i| i < n).collect();
    excluded.sort_unstable();
    excluded.dedup();
    let eligible: Vec<NodeId> = (0..n)
        .filter(|i| excluded.binary_search(i).is_err())
        .collect();
    let mut out = Vec::new();
    if f > eligible.len() {
        return out;
    }
    // Odometer over index combinations of `eligible`.
    let mut idx: Vec<usize> = (0..f).collect();
    loop {
        out.push(idx.iter().map(|&k| eligible[k]).collect());
        // Advance the rightmost index that still has room.
        let mut i = f;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] + (f - i) < eligible.len() {
                idx[i] += 1;
                for j in i + 1..f {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Verifies **label** r-stabilization of `protocol` under every placement
/// of `f` Byzantine nodes outside `exclude`, in parallel over placements.
///
/// `limits.faults` is overridden per placement; every other limit (state
/// caps, thread count, SCC backend, symmetry mode) applies to each run
/// unchanged. Rows come back in the lexicographic placement order of
/// [`byzantine_placements`], so the table is deterministic.
///
/// # Errors
///
/// The first placement (in placement order) whose verification fails
/// surfaces its [`VerifyError`]; `f = 0` runs exactly one fault-free
/// verification.
pub fn sweep_byzantine_placements<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
) -> Result<Vec<PlacementVerdict<L>>, VerifyError> {
    sweep_placements(
        protocol,
        inputs,
        alphabet,
        r,
        limits,
        f,
        exclude,
        FaultModel::byzantine,
    )
}

/// Verifies **label** r-stabilization of `protocol` under every placement
/// of `f` **crash** nodes outside `exclude` — the crash twin of
/// [`sweep_byzantine_placements`], with the same placement enumeration,
/// the same parallel driver, and the same deterministic row order. A
/// crashed node's reaction is replaced by the single
/// keep-current-labels choice, so each placement's product graph is far
/// smaller than its Byzantine counterpart's.
///
/// # Errors
///
/// As for [`sweep_byzantine_placements`].
pub fn sweep_crash_placements<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
) -> Result<Vec<PlacementVerdict<L>>, VerifyError> {
    sweep_placements(
        protocol,
        inputs,
        alphabet,
        r,
        limits,
        f,
        exclude,
        FaultModel::crash,
    )
}

/// The Byzantine twin of [`sweep_crash_placements_cached`]: every
/// placement's query is routed through `cache`, so placements already
/// memoized (from an earlier sweep, a persisted cache directory, or a
/// single-instance query for the same fingerprint) are served without
/// re-exploring. Rows come back in placement order with per-row
/// hit / miss / resumed provenance; verdicts and witnesses are
/// bit-identical to the uncached [`sweep_byzantine_placements`].
///
/// # Errors
///
/// As for [`sweep_byzantine_placements`].
#[allow(clippy::too_many_arguments)] // the sweep surface plus the cache
pub fn sweep_byzantine_placements_cached<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
    cache: &VerdictCache,
) -> Result<Vec<CachedPlacementVerdict<L>>, VerifyError> {
    sweep_placements_cached(
        protocol,
        inputs,
        alphabet,
        r,
        limits,
        f,
        exclude,
        FaultModel::byzantine,
        Some(cache),
    )
}

/// The crash twin of [`sweep_byzantine_placements_cached`]: same cache
/// routing, same row provenance, with each placement's nodes crashed.
///
/// # Errors
///
/// As for [`sweep_byzantine_placements`].
#[allow(clippy::too_many_arguments)] // the sweep surface plus the cache
pub fn sweep_crash_placements_cached<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
    cache: &VerdictCache,
) -> Result<Vec<CachedPlacementVerdict<L>>, VerifyError> {
    sweep_placements_cached(
        protocol,
        inputs,
        alphabet,
        r,
        limits,
        f,
        exclude,
        FaultModel::crash,
        Some(cache),
    )
}

/// The uncached driver: the cache-routed driver with the rows projected
/// down to plain [`PlacementVerdict`]s (a `None` cache makes every row
/// a fresh computation, exactly the old behavior).
#[allow(clippy::too_many_arguments)] // private driver behind two thin public wrappers
fn sweep_placements<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
    model: fn(&[NodeId]) -> Result<FaultModel, CoreError>,
) -> Result<Vec<PlacementVerdict<L>>, VerifyError> {
    let rows = sweep_placements_cached(
        protocol, inputs, alphabet, r, limits, f, exclude, model, None,
    )?;
    Ok(rows
        .into_iter()
        .map(|row| PlacementVerdict {
            placement: row.placement,
            verdict: row.verdict,
        })
        .collect())
}

/// The shared sweep driver: enumerate placements, build each placement's
/// fault model with `model` ([`FaultModel::byzantine`] or
/// [`FaultModel::crash`]), and verify per placement on the
/// [`par_sweep`] pool — through `cache` when given (the cache is
/// internally synchronized, so all workers share it; a placement
/// computed by one worker is a hit for every later repeat).
#[allow(clippy::too_many_arguments)] // private driver behind four thin public wrappers
fn sweep_placements_cached<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    limits: Limits,
    f: usize,
    exclude: &[NodeId],
    model: fn(&[NodeId]) -> Result<FaultModel, CoreError>,
    cache: Option<&VerdictCache>,
) -> Result<Vec<CachedPlacementVerdict<L>>, VerifyError> {
    let placements = byzantine_placements(protocol.node_count(), f, exclude);
    let rows = par_sweep(placements, |placement: Vec<NodeId>| {
        let faults = model(&placement).map_err(|e| VerifyError::BadParameters {
            what: e.to_string(),
        })?;
        let limits = Limits {
            faults,
            ..limits.clone()
        };
        let (verdict, stats, outcome) = match cache {
            Some(cache) => {
                let hit = cache.verify_label(protocol, inputs, alphabet, r, &limits)?;
                (hit.verdict, hit.stats, hit.outcome)
            }
            None => {
                let (verdict, stats) =
                    verify_label_stabilization_with_stats(protocol, inputs, alphabet, r, limits)?;
                (verdict, stats, CacheOutcome::Miss)
            }
        };
        Ok(CachedPlacementVerdict {
            placement,
            verdict,
            stats,
            cache: outcome,
        })
    });
    rows.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_enumerate_lexicographically_and_skip_excluded() {
        assert_eq!(
            byzantine_placements(4, 2, &[]),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(
            byzantine_placements(4, 1, &[0]),
            vec![vec![1], vec![2], vec![3]]
        );
        assert_eq!(byzantine_placements(3, 0, &[]), vec![Vec::<NodeId>::new()]);
        assert!(byzantine_placements(3, 3, &[0]).is_empty());
    }

    #[test]
    fn placements_normalize_sloppy_exclusion_lists() {
        // Duplicate ids must not be counted twice: with {0} excluded
        // once or thrice, two of three nodes stay eligible and
        // C(2, 2) = 1 — a naive |exclude| count would claim C(0, 2) = 0.
        assert_eq!(byzantine_placements(3, 2, &[0, 0, 0]), vec![vec![1, 2]]);
        assert_eq!(
            byzantine_placements(3, 2, &[0]),
            byzantine_placements(3, 2, &[0, 0, 0])
        );
        // Out-of-range ids exclude nothing.
        assert_eq!(
            byzantine_placements(4, 1, &[7, 99]),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
        // Unsorted + duplicated + out-of-range all at once.
        assert_eq!(
            byzantine_placements(4, 1, &[3, 0, 3, 10, 0]),
            vec![vec![1], vec![2]]
        );
        // f = 0 stays the single empty placement even when the
        // exclusion list covers (or over-covers) every node.
        assert_eq!(
            byzantine_placements(3, 0, &[2, 1, 0, 1, 5]),
            vec![Vec::<NodeId>::new()]
        );
        // f exceeding the *normalized* eligible count is empty.
        assert!(byzantine_placements(3, 3, &[1, 1]).is_empty());
    }
}
