//! Crash-safe verification: checkpoint policies, resumable handles, and
//! the canonical instance fingerprint.
//!
//! The exact verifier's exploration is a long, deterministic
//! computation; this module is the contract that lets it survive
//! interruption. A [`CheckpointPolicy`] on
//! [`Limits::checkpoint`](crate::product::Limits::checkpoint) makes the
//! explorer serialize its sharded state index — plus the batch cursor
//! and edge totals — into epoch files of a
//! [`stateless_core::checkpoint::CheckpointStore`] at batch boundaries.
//! A [`CheckpointHandle`] names one committed epoch; resuming from it
//! (`verify_label_stabilization_resumed` and friends in
//! [`product`](crate::product)) replays the interned states back into a
//! fresh explorer and continues from the stored cursor, producing
//! verdicts, state ids, and witnesses **bit-identical** to an
//! uninterrupted run at any thread count.
//!
//! # The instance fingerprint
//!
//! A checkpoint is only meaningful for the exact verification instance
//! that wrote it. Every epoch header therefore stores an
//! [`instance_fingerprint`] over everything that shapes the product
//! graph: node and edge structure of the topology, `r`, the query mode
//! (label vs output stabilization), the deduplicated alphabet, the
//! inputs, the fault model, the symmetry mode, and the state/edge
//! budgets — plus a *behavioral* digest of the protocol table itself
//! (the reactions are opaque functions, so they are probed on a fixed
//! pseudorandom sample of labelings and the responses hashed). Worker
//! thread counts, the SCC backend, the deadline, and the checkpoint
//! policy are deliberately **excluded**: none of them change the
//! explored graph, and resume-at-a-different-thread-count is exactly
//! the point. A mismatch at resume time is a typed
//! [`ResumeError::InstanceMismatch`], never a silent wrong answer.
//! (The behavioral probe is a guard against accidental mismatch, not a
//! proof of protocol equality — two reactions that agree on the probe
//! sample but differ elsewhere can collide, like any fingerprint.)

use std::fmt;
use std::path::PathBuf;

use stateless_core::checkpoint::CheckpointError;
use stateless_core::intern::FxHasher;
use stateless_core::prelude::*;
use stateless_core::symmetry::SymmetryMode;
use std::hash::{Hash, Hasher};

/// When (and where) the explorer writes checkpoint epochs.
///
/// Epochs are written only at deterministic exploration points — batch
/// boundaries of the three-phase pipeline — so every epoch is an exact
/// prefix of the (thread-count-independent) exploration and resuming
/// from it reproduces the uninterrupted run bit for bit.
///
/// With both intervals `None`, no periodic epochs are written; the
/// explorer still writes a final epoch when a
/// [`Limits::deadline`](crate::product::Limits::deadline) expires (the
/// handle inside [`Verdict::Partial`](crate::product::Verdict::Partial))
/// and when a poisoned chunk forces a checkpoint-and-fail.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Directory of the checkpoint store (created if needed). One
    /// verification instance per directory — epochs of different
    /// instances must not share a store.
    pub dir: PathBuf,
    /// Write an epoch once this many states of progress — newly
    /// interned *plus* newly expanded — have accumulated since the last
    /// one. Expansion counts because label-mode `r = 1` instances seed
    /// their whole state space up front; interning alone would never
    /// come due there. `Some(0)` is rejected by
    /// [`Limits::validate`](crate::product::Limits::validate).
    pub every_states: Option<usize>,
    /// Write an epoch once this much wall-clock time has elapsed since
    /// the last one (seconds). Must be finite and positive.
    pub every_secs: Option<f64>,
    /// How many committed epochs to keep; older ones are pruned at each
    /// commit. At least 1 (0 is rejected up front); keep ≥ 2 so a
    /// corrupted newest epoch still leaves a fallback.
    pub retain: usize,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` with no periodic interval (epochs only
    /// at deadline expiry or poisoned-chunk failure) and a retention of
    /// 2 epochs. Set [`every_states`](CheckpointPolicy::every_states) /
    /// [`every_secs`](CheckpointPolicy::every_secs) for periodic
    /// checkpointing.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every_states: None,
            every_secs: None,
            retain: 2,
        }
    }
}

/// One committed checkpoint epoch — the resumable handle carried by
/// [`Verdict::Partial`](crate::product::Verdict::Partial) and accepted
/// (via its directory) by the `*_resumed` entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHandle {
    /// The checkpoint store directory.
    pub dir: PathBuf,
    /// The committed epoch number.
    pub epoch: u64,
}

/// Typed failures of the resume path. A checkpoint never silently
/// produces a wrong answer: anything unexpected is one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResumeError {
    /// The checkpoint was written by a different verification instance
    /// (protocol table, topology, r, query mode, alphabet, inputs,
    /// fault model, symmetry mode, or budgets differ).
    InstanceMismatch {
        /// The fingerprint of the instance being resumed.
        expected: u64,
        /// The fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The store holds no epoch that passes validation.
    NoEpoch {
        /// The store directory that was searched.
        dir: String,
    },
    /// An epoch or manifest failed checksum / framing / consistency
    /// validation.
    Corrupt {
        /// What failed to validate.
        what: String,
    },
    /// A filesystem operation failed.
    Io {
        /// The failed operation.
        what: String,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::InstanceMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different verification instance \
                 (expected fingerprint {expected:016x}, found {found:016x})"
            ),
            ResumeError::NoEpoch { dir } => {
                write!(f, "no valid checkpoint epoch in {dir}")
            }
            ResumeError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
            ResumeError::Io { what } => write!(f, "checkpoint I/O failed: {what}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io { what } => ResumeError::Io { what },
            CheckpointError::Corrupt { what } => ResumeError::Corrupt { what },
            CheckpointError::Missing { what } => ResumeError::Io {
                what: format!("missing {what}"),
            },
        }
    }
}

/// Version word mixed into every instance fingerprint, bumped whenever
/// the fingerprinted feature set changes.
const FINGERPRINT_SEED: u64 = 0x5354_4c53_4650_0001; // "STLSFP" v1

/// Number of pseudorandom labelings each node's reaction is probed with.
const PROBES_PER_NODE: usize = 8;

/// The canonical fingerprint of a verification instance — see the
/// [module docs](self) for exactly what is (and is not) covered.
///
/// `alphabet` must already be deduplicated (first occurrence wins), as
/// the explorer's `Config` holds it: duplicate alphabet entries do not
/// change the instance.
#[allow(clippy::too_many_arguments)] // one parameter per fingerprinted dimension
pub fn instance_fingerprint<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alphabet: &[L],
    r: u8,
    track_outputs: bool,
    faults: &FaultModel,
    symmetry: SymmetryMode,
    max_states: usize,
    max_edges: usize,
) -> u64 {
    let mut h = FxHasher::seeded(FINGERPRINT_SEED);
    let graph = protocol.graph();
    let (n, e) = (graph.node_count(), graph.edge_count());
    h.write_usize(n);
    h.write_usize(e);
    for (id, u, v) in graph.edges() {
        h.write_usize(id);
        h.write_usize(u);
        h.write_usize(v);
    }
    h.write_u8(r);
    h.write_u8(u8::from(track_outputs));
    h.write_usize(alphabet.len());
    for l in alphabet {
        l.hash(&mut h);
    }
    h.write_usize(inputs.len());
    for &x in inputs {
        h.write_u64(x);
    }
    faults.hash(&mut h);
    h.write_u8(match symmetry {
        SymmetryMode::Off => 0,
        SymmetryMode::Auto => 1,
    });
    h.write_usize(max_states);
    h.write_usize(max_edges);
    // Behavioral digest of the protocol table: probe every node's
    // reaction on a fixed pseudorandom sample of labelings (an LCG over
    // alphabet indices — deterministic, platform-independent) and hash
    // the emitted labels and output. Reactions are opaque functions, so
    // this is the closest thing to "the same δ" a fingerprint can check.
    if !alphabet.is_empty() {
        let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut labeling: Vec<L> = Vec::with_capacity(e);
        let mut in_buf: Vec<L> = Vec::new();
        let mut react_buf: Vec<L> = Vec::new();
        for node in 0..n {
            for _ in 0..PROBES_PER_NODE {
                labeling.clear();
                for _ in 0..e {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    labeling.push(alphabet[(lcg >> 33) as usize % alphabet.len()].clone());
                }
                let y = protocol.apply_buffered(
                    node,
                    &labeling,
                    inputs.get(node).copied().unwrap_or(0),
                    &mut in_buf,
                    &mut react_buf,
                );
                h.write_u64(y);
                h.write_usize(react_buf.len());
                for l in &react_buf {
                    l.hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::reaction::FnReaction;

    fn ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 0)))
            .build()
            .unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let p = ring(3);
        let fp = |r: u8, inputs: &[Input], track: bool| {
            instance_fingerprint(
                &p,
                inputs,
                &[false, true],
                r,
                track,
                &FaultModel::none(),
                SymmetryMode::Off,
                1000,
                10_000,
            )
        };
        assert_eq!(fp(2, &[0; 3], false), fp(2, &[0; 3], false));
        assert_ne!(fp(2, &[0; 3], false), fp(3, &[0; 3], false), "r");
        assert_ne!(fp(2, &[0; 3], false), fp(2, &[1, 0, 0], false), "inputs");
        assert_ne!(fp(2, &[0; 3], false), fp(2, &[0; 3], true), "query mode");
    }

    #[test]
    fn fingerprint_sees_the_reaction_table() {
        let not_ring = Protocol::builder(topology::unidirectional_ring(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![!inc[0]], 0)))
            .build()
            .unwrap();
        let base = |p: &Protocol<bool>| {
            instance_fingerprint(
                p,
                &[0; 3],
                &[false, true],
                2,
                false,
                &FaultModel::none(),
                SymmetryMode::Off,
                1000,
                10_000,
            )
        };
        assert_ne!(base(&ring(3)), base(&not_ring));
    }

    #[test]
    fn fingerprint_sees_faults_symmetry_and_budgets() {
        let p = ring(4);
        let fp = |faults: FaultModel, sym: SymmetryMode, ms: usize| {
            instance_fingerprint(
                &p,
                &[0; 4],
                &[false, true],
                2,
                false,
                &faults,
                sym,
                ms,
                10_000,
            )
        };
        let base = fp(FaultModel::none(), SymmetryMode::Off, 1000);
        let byz = FaultModel::byzantine(&[1]).unwrap();
        let crash = FaultModel::crash(&[1]).unwrap();
        assert_ne!(base, fp(byz, SymmetryMode::Off, 1000), "byzantine");
        assert_ne!(
            fp(byz, SymmetryMode::Off, 1000),
            fp(crash, SymmetryMode::Off, 1000),
            "byzantine vs crash"
        );
        assert_ne!(base, fp(FaultModel::none(), SymmetryMode::Auto, 1000));
        assert_ne!(base, fp(FaultModel::none(), SymmetryMode::Off, 2000));
    }
}
