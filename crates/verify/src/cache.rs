//! Memoized verdict cache: in-memory + on-disk memoization of exact
//! verification results, keyed by the canonical
//! [`instance_fingerprint`].
//!
//! Repeated verification queries are the production traffic pattern —
//! placement sweeps re-verify near-identical instances, batch services
//! replay whole job files — and the product-graph exploration behind
//! each query is deterministic: the same instance always produces the
//! bit-identical `{verdict, witness, stats}`. The fingerprint covers
//! everything that shapes the explored graph (topology, `r`, query
//! mode, deduplicated alphabet, inputs, fault model, symmetry mode,
//! state/edge budgets, and a behavioral probe of the reactions) and
//! deliberately **excludes** worker thread counts, the SCC backend, the
//! deadline, and the checkpoint policy — none of them change the
//! verdict, which is exactly the cache-key property: a result computed
//! at 8 threads under Forward–Backward serves a 1-thread Tarjan query
//! bit for bit.
//!
//! # What is stored
//!
//! Each entry carries the verdict (witness included, with labels
//! encoded as indices into the deduplicated alphabet — every witness
//! label is an alphabet member by construction), the [`ExploreStats`],
//! and a [`Provenance`] record: the commit the result was computed at,
//! the wall time it took, and the limits actually used. Entries are
//! held serialized (a flat `u64` word vector), so one cache serves any
//! label type `L`; decoding on a hit reconstructs the labels through
//! the *query's* alphabet, which the fingerprint guarantees matches the
//! writer's. Two different instances colliding on the 64-bit
//! fingerprint would cross-serve — the same trust model as checkpoint
//! resume, and the same answer: the fingerprint also digests reaction
//! behavior, so a collision requires a hash collision, not a mere
//! configuration overlap.
//!
//! # `Verdict::Partial` is never memoized as final
//!
//! A deadline-truncated run proves nothing; caching it as an answer
//! would serve "no claim" forever. Instead a `Partial` that carries a
//! [`CheckpointHandle`] is stored as a **resume pointer** — the store
//! directory and epoch of its final checkpoint. A later query for the
//! same instance finds the pointer and *resumes* the exploration
//! ([`CacheOutcome::Resumed`]) instead of restarting it; if the longer
//! deadline completes the run, the full verdict replaces the pointer
//! and subsequent queries are plain hits. A `Partial` without a handle
//! (no checkpoint policy) is returned but not memoized at all.
//!
//! # Persistence
//!
//! With a directory ([`VerdictCache::open`]) the cache persists through
//! the length+checksum-framed segment format of
//! [`stateless_core::checkpoint`]: one epoch file per save, one segment
//! per entry, committed tmp-then-rename through a [`CheckpointStore`].
//! Corrupt data is **skipped, never trusted**: a torn or bit-flipped
//! epoch fails its checksum validation and loading falls back to the
//! previous epoch (or an empty cache — a recompute, never a wrong
//! answer), and an entry that decodes inconsistently is dropped at
//! lookup time. Eviction is LRU under a byte budget measured over the
//! serialized entry payloads.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use stateless_core::checkpoint::{CheckpointError, CheckpointStore};
use stateless_core::prelude::*;
use stateless_core::symmetry::SymmetryMode;

use crate::checkpoint::{instance_fingerprint, CheckpointHandle};
use crate::product::{
    verify_label_stabilization_resumed_at, verify_label_stabilization_with_stats,
    verify_output_stabilization_resumed_at, verify_output_stabilization_with_stats, CycleWitness,
    ExploreStats, Limits, SccBackend, Verdict, VerifyError,
};

/// Default byte budget for the serialized entry payloads (64 MiB —
/// verdict entries are tiny; this is effectively "unbounded unless you
/// cache millions of witnesses").
pub const DEFAULT_BYTE_BUDGET: usize = 64 << 20;

/// Segment tag of the cache header segment (one per epoch).
const HEADER_TAG: u32 = 0x5643_4844; // "VCHD"
/// Segment tag of one serialized cache entry.
const ENTRY_TAG: u32 = 0x5643_4531; // "VCE1"
/// Magic word opening the header segment.
const HEADER_MAGIC: u64 = 0x7374_6c73_2d76_6331; // "stls-vc1"
/// Entry format version; entries of another version are skipped on load
/// (a recompute, never a misdecode).
const ENTRY_VERSION: u64 = 1;

/// Entry kind words.
const KIND_STABILIZING: u64 = 0;
const KIND_NOT_STABILIZING: u64 = 1;
const KIND_RESUME_POINTER: u64 = 2;

/// How a [`VerdictCache`] query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a memoized final verdict — no exploration ran.
    Hit,
    /// Computed from scratch (and memoized when final, or stored as a
    /// resume pointer when `Partial` with a checkpoint).
    Miss,
    /// A stored `Partial` resume pointer was found and the exploration
    /// **continued** from its checkpoint epoch instead of restarting.
    Resumed,
}

impl CacheOutcome {
    /// The lowercase wire name (`hit` / `miss` / `resumed`) used in
    /// `verifyd` result rows.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Resumed => "resumed",
        }
    }
}

/// How a cached verdict came to be: the audit record stored alongside
/// every entry and returned with every answer (on a hit, the
/// provenance of the run that *originally* computed the result).
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The commit the computing process ran at — read from the
    /// `STATELESS_COMMIT` environment variable (CI exports the build
    /// sha; no git invocation at runtime), `"unknown"` when unset.
    pub commit: String,
    /// Wall-clock seconds the computing run took (exploration through
    /// verdict). Zero for a resume pointer that has not completed yet.
    pub wall_secs: f64,
    /// Worker threads the computing run used ([`Limits::threads`]).
    pub threads: usize,
    /// SCC backend the computing run used.
    pub scc: SccBackend,
    /// Symmetry mode of the instance (also part of the cache key).
    pub symmetry: SymmetryMode,
    /// State budget of the instance (part of the cache key).
    pub max_states: usize,
    /// Edge budget of the instance (part of the cache key).
    pub max_edges: usize,
}

/// One answered query: the verdict (bit-identical to the computing
/// run's), its exploration stats, the provenance of the run that
/// computed it, the instance fingerprint it was keyed under, and how
/// the cache answered.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict<L> {
    /// The exact verdict.
    pub verdict: Verdict<L>,
    /// The computing run's exploration stats.
    pub stats: ExploreStats,
    /// The audit record of the computing run.
    pub provenance: Provenance,
    /// The instance fingerprint (the cache key).
    pub fingerprint: u64,
    /// Hit, miss, or resumed.
    pub outcome: CacheOutcome,
}

/// One serialized entry: the flat word vector (see the encoding
/// helpers) and its LRU stamp.
#[derive(Debug)]
struct Entry {
    words: Vec<u64>,
    last_used: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    total_bytes: usize,
    /// Monotonic LRU clock.
    tick: u64,
    /// The last persisted epoch number (0 before any save).
    epoch: u64,
}

/// The memoized verdict cache. See the [module docs](self) for the key,
/// storage, and `Partial` semantics. All methods take `&self`; the
/// cache is internally synchronized and shared freely across
/// [`par_sweep`](stateless_core::convergence::par_sweep) workers.
/// Lookups and inserts lock briefly; verification itself runs outside
/// the lock, so concurrent misses on the *same* instance may compute it
/// twice (both arrive at the bit-identical entry — wasted work, never a
/// wrong answer).
#[derive(Debug)]
pub struct VerdictCache {
    inner: Mutex<Inner>,
    dir: Option<PathBuf>,
    byte_budget: usize,
}

impl VerdictCache {
    /// A memory-only cache with the given byte budget over serialized
    /// entry payloads ([`DEFAULT_BYTE_BUDGET`] is a good default).
    pub fn in_memory(byte_budget: usize) -> Self {
        VerdictCache {
            inner: Mutex::new(Inner::default()),
            dir: None,
            byte_budget,
        }
    }

    /// Opens (creating if needed) a persistent cache in `dir`, loading
    /// every decodable entry from the newest valid epoch. A corrupt
    /// newest epoch falls back to the previous one; no valid epoch at
    /// all is an empty cache — corruption can only cost recomputation.
    /// Every insert rewrites the store (entries are small; a save is
    /// one tmp-then-rename commit).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created or
    /// listed.
    pub fn open(dir: &Path, byte_budget: usize) -> Result<Self, CheckpointError> {
        let store = CheckpointStore::open(dir)?;
        let mut inner = Inner::default();
        if let Ok(Some(epoch)) = store.latest_valid_epoch() {
            inner.epoch = epoch;
            // The epoch validated wholesale already; per-entry decoding
            // failures below (version skew, malformed words) skip the
            // entry rather than poisoning the load.
            if let Ok(mut reader) = store.open_epoch(epoch) {
                let header_ok = match reader.next_segment() {
                    Ok(Some(mut seg)) => {
                        seg.tag == HEADER_TAG && seg.take_u64().ok() == Some(HEADER_MAGIC)
                    }
                    _ => false,
                };
                // A missing or mismatched header means the epoch is not
                // a cache save (e.g. the directory is shared with some
                // other checkpoint writer) — load nothing from it.
                if header_ok {
                    while let Ok(Some(mut seg)) = reader.next_segment() {
                        if seg.tag != ENTRY_TAG {
                            continue;
                        }
                        let mut words = Vec::with_capacity(seg.remaining() / 8);
                        if seg.take_u64s(seg.remaining() / 8, &mut words).is_err() {
                            continue;
                        }
                        // Entries were written in LRU order, so stamping
                        // in read order preserves the eviction order.
                        if let Some(fp) = entry_key(&words) {
                            inner.tick += 1;
                            let entry = Entry {
                                words,
                                last_used: inner.tick,
                            };
                            inner.total_bytes += entry.bytes();
                            inner.entries.insert(fp, entry);
                        }
                    }
                }
            }
        }
        Ok(VerdictCache {
            inner: Mutex::new(inner),
            dir: Some(dir.to_path_buf()),
            byte_budget,
        })
    }

    /// Number of entries currently held (final verdicts and resume
    /// pointers alike).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total serialized bytes currently held — the figure the byte
    /// budget bounds. (A single entry larger than the whole budget is
    /// kept — the cache never evicts the entry an insert just paid
    /// for — so this can exceed the budget only in that degenerate
    /// single-entry case.)
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().expect("cache lock").total_bytes
    }

    /// The byte budget eviction holds [`total_bytes`](Self::total_bytes)
    /// to.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// The instance fingerprint a **label**-stabilization query of
    /// these parameters is keyed under (exposed so services can report
    /// the key alongside their rows).
    pub fn label_fingerprint<L: Label>(
        protocol: &Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        limits: &Limits,
    ) -> u64 {
        fingerprint_of(
            protocol,
            inputs,
            &dedup_alphabet(alphabet),
            r,
            false,
            limits,
        )
    }

    /// Answers a **label**-stabilization query through the cache:
    /// a memoized final verdict is a [`CacheOutcome::Hit`] (bit-identical
    /// `{verdict, witness, stats}` to the run that computed it), a
    /// stored `Partial` pointer resumes from its checkpoint epoch
    /// ([`CacheOutcome::Resumed`]), and anything else verifies from
    /// scratch ([`CacheOutcome::Miss`]) and memoizes the result.
    ///
    /// # Errors
    ///
    /// As for [`verify_label_stabilization_with_stats`]. Cache-layer
    /// I/O can never fail a query: a broken persistence directory only
    /// stops memoization, and a corrupt entry falls back to recompute.
    pub fn verify_label<L: Label>(
        &self,
        protocol: &Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        limits: &Limits,
    ) -> Result<CachedVerdict<L>, VerifyError> {
        self.verify(protocol, inputs, alphabet, r, false, limits)
    }

    /// The **output**-stabilization twin of
    /// [`verify_label`](Self::verify_label) (a different query mode is
    /// a different fingerprint, so the two never cross-serve).
    ///
    /// # Errors
    ///
    /// As for [`verify_label`](Self::verify_label).
    pub fn verify_output<L: Label>(
        &self,
        protocol: &Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        limits: &Limits,
    ) -> Result<CachedVerdict<L>, VerifyError> {
        self.verify(protocol, inputs, alphabet, r, true, limits)
    }

    fn verify<L: Label>(
        &self,
        protocol: &Protocol<L>,
        inputs: &[Input],
        alphabet: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
    ) -> Result<CachedVerdict<L>, VerifyError> {
        limits.validate()?;
        let dedup = dedup_alphabet(alphabet);
        let fp = fingerprint_of(protocol, inputs, &dedup, r, track_outputs, limits);
        // Lookup under the lock; decode failures drop the entry (a
        // corrupt record must fall back to recompute, not error).
        let cached = {
            let mut inner = self.inner.lock().expect("cache lock");
            let decoded = inner
                .entries
                .get(&fp)
                .map(|entry| decode_entry::<L>(&entry.words, &dedup));
            match decoded {
                Some(Some(decoded)) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner
                        .entries
                        .get_mut(&fp)
                        .expect("entry just found")
                        .last_used = tick;
                    Some(decoded)
                }
                Some(None) => {
                    let dropped = inner.entries.remove(&fp).expect("entry just found");
                    inner.total_bytes -= dropped.bytes();
                    None
                }
                None => None,
            }
        };
        match cached {
            Some(Decoded::Final {
                verdict,
                stats,
                provenance,
            }) => Ok(CachedVerdict {
                verdict,
                stats,
                provenance,
                fingerprint: fp,
                outcome: CacheOutcome::Hit,
            }),
            Some(Decoded::Pointer { handle, .. }) => self.resume(
                protocol,
                inputs,
                &dedup,
                r,
                track_outputs,
                limits,
                fp,
                &handle,
            ),
            None => self.compute(protocol, inputs, &dedup, r, track_outputs, limits, fp),
        }
    }

    /// The miss path: verify from scratch, memoize, report
    /// [`CacheOutcome::Miss`].
    #[allow(clippy::too_many_arguments)] // private: one arg per instance dimension
    fn compute<L: Label>(
        &self,
        protocol: &Protocol<L>,
        inputs: &[Input],
        dedup: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
        fp: u64,
    ) -> Result<CachedVerdict<L>, VerifyError> {
        let started = Instant::now();
        let (verdict, stats) = if track_outputs {
            verify_output_stabilization_with_stats(protocol, inputs, dedup, r, limits.clone())?
        } else {
            verify_label_stabilization_with_stats(protocol, inputs, dedup, r, limits.clone())?
        };
        let provenance = provenance_of(limits, started.elapsed().as_secs_f64());
        self.memoize(fp, &verdict, stats, &provenance, dedup);
        Ok(CachedVerdict {
            verdict,
            stats,
            provenance,
            fingerprint: fp,
            outcome: CacheOutcome::Miss,
        })
    }

    /// The resume path: continue a stored `Partial` from its checkpoint
    /// epoch. A stale or unusable pointer degrades to the miss path —
    /// a pointer can cost a restart, never a wrong answer.
    #[allow(clippy::too_many_arguments)] // private: one arg per instance dimension
    fn resume<L: Label>(
        &self,
        protocol: &Protocol<L>,
        inputs: &[Input],
        dedup: &[L],
        r: u8,
        track_outputs: bool,
        limits: &Limits,
        fp: u64,
        handle: &CheckpointHandle,
    ) -> Result<CachedVerdict<L>, VerifyError> {
        let started = Instant::now();
        let run = |epoch: Option<u64>| {
            if track_outputs {
                verify_output_stabilization_resumed_at(
                    protocol,
                    inputs,
                    dedup,
                    r,
                    limits.clone(),
                    &handle.dir,
                    epoch,
                )
            } else {
                verify_label_stabilization_resumed_at(
                    protocol,
                    inputs,
                    dedup,
                    r,
                    limits.clone(),
                    &handle.dir,
                    epoch,
                )
            }
        };
        // The stored epoch first; a pruned or corrupted one falls back
        // to the newest valid epoch, and a dead store to a fresh run.
        let resumed = run(Some(handle.epoch)).or_else(|e| match e {
            VerifyError::Resume(_) => run(None),
            other => Err(other),
        });
        let (verdict, stats) = match resumed {
            Ok(ok) => ok,
            Err(VerifyError::Resume(_)) => {
                return self.compute(protocol, inputs, dedup, r, track_outputs, limits, fp)
            }
            Err(other) => return Err(other),
        };
        let provenance = provenance_of(limits, started.elapsed().as_secs_f64());
        self.memoize(fp, &verdict, stats, &provenance, dedup);
        Ok(CachedVerdict {
            verdict,
            stats,
            provenance,
            fingerprint: fp,
            outcome: CacheOutcome::Resumed,
        })
    }

    /// Stores a computed result: final verdicts as full entries,
    /// checkpointed `Partial`s as resume pointers, handle-less
    /// `Partial`s not at all.
    fn memoize<L: Label>(
        &self,
        fp: u64,
        verdict: &Verdict<L>,
        stats: ExploreStats,
        provenance: &Provenance,
        dedup: &[L],
    ) {
        let words = match verdict {
            Verdict::Partial {
                checkpoint: Some(handle),
                ..
            } => encode_pointer(fp, stats, provenance, handle),
            Verdict::Partial {
                checkpoint: None, ..
            } => return,
            final_verdict => match encode_final(fp, final_verdict, stats, provenance, dedup) {
                Some(words) => words,
                // A witness label outside the alphabet cannot be
                // index-coded; unreachable by construction, but an
                // uncacheable verdict beats a corrupt entry.
                None => return,
            },
        };
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let entry = Entry {
            words,
            last_used: inner.tick,
        };
        let added = entry.bytes();
        if let Some(old) = inner.entries.insert(fp, entry) {
            inner.total_bytes -= old.bytes();
        }
        inner.total_bytes += added;
        // LRU eviction to the byte budget; the entry just inserted is
        // exempt (evicting what a miss just paid for would thrash).
        while inner.total_bytes > self.byte_budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(&k, _)| k != fp)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            let evicted = inner.entries.remove(&victim).expect("victim exists");
            inner.total_bytes -= evicted.bytes();
        }
        if self.dir.is_some() {
            // Persistence is best-effort: an I/O failure loses
            // durability, not correctness (the in-memory entry stands).
            let _ = self.save(&mut inner);
        }
    }

    /// Writes every entry as one new epoch (LRU order, oldest first, so
    /// a reload reconstructs the eviction order) and commits it through
    /// the checkpoint store, retaining the previous epoch as the
    /// corruption fallback. Advances the epoch counter on success only.
    fn save(&self, inner: &mut Inner) -> Result<(), CheckpointError> {
        let dir = self.dir.as_deref().expect("save requires a directory");
        let store = CheckpointStore::open(dir)?;
        let epoch = inner.epoch + 1;
        let mut writer = store.begin_epoch(epoch)?;
        writer.begin_segment(HEADER_TAG);
        writer.put_u64(HEADER_MAGIC);
        writer.put_u64(inner.entries.len() as u64);
        writer.end_segment()?;
        let mut ordered: Vec<&Entry> = inner.entries.values().collect();
        ordered.sort_by_key(|e| e.last_used);
        for entry in ordered {
            writer.begin_segment(ENTRY_TAG);
            writer.put_u64s(&entry.words);
            writer.end_segment()?;
        }
        store.commit(writer, 2)?;
        inner.epoch = epoch;
        Ok(())
    }

    /// Persists the current entries now (inserts already save
    /// eagerly; this is for callers that mutated nothing but want the
    /// epoch trail advanced, e.g. a service shutting down cleanly).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on store I/O; memory-only caches return `Ok`.
    pub fn persist(&self) -> Result<(), CheckpointError> {
        if self.dir.is_none() {
            return Ok(());
        }
        let mut inner = self.inner.lock().expect("cache lock");
        self.save(&mut inner)
    }
}

/// First-occurrence deduplication — exactly the explorer's (and
/// [`instance_fingerprint`]'s required) alphabet normalization, so the
/// cache key and the index-coded witness labels agree with the runs
/// they memoize.
fn dedup_alphabet<L: Label>(alphabet: &[L]) -> Vec<L> {
    let mut dedup: Vec<L> = Vec::with_capacity(alphabet.len());
    for l in alphabet {
        if !dedup.contains(l) {
            dedup.push(l.clone());
        }
    }
    dedup
}

fn fingerprint_of<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    dedup: &[L],
    r: u8,
    track_outputs: bool,
    limits: &Limits,
) -> u64 {
    instance_fingerprint(
        protocol,
        inputs,
        dedup,
        r,
        track_outputs,
        &limits.faults,
        limits.symmetry,
        limits.max_states,
        limits.max_edges,
    )
}

fn provenance_of(limits: &Limits, wall_secs: f64) -> Provenance {
    Provenance {
        commit: std::env::var("STATELESS_COMMIT").unwrap_or_else(|_| "unknown".into()),
        wall_secs,
        threads: limits.threads,
        scc: limits.scc,
        symmetry: limits.symmetry,
        max_states: limits.max_states,
        max_edges: limits.max_edges,
    }
}

// ---------------------------------------------------------------------------
// Entry encoding: a flat little-endian u64 vector, segment-framed on
// disk and held verbatim in memory (the hit path decodes exactly what a
// reload would, so memory and disk can never drift apart).
//
//   [version, fingerprint, kind,
//    states, edges, words_per_state, state_bytes, edge_bytes,     (stats)
//    wall_secs_bits, threads, scc, symmetry, max_states, max_edges,
//    commit_len, commit_words…,                                   (provenance)
//    kind-specific payload…]
//
// KIND_NOT_STABILIZING payload: labeling_len, label_idx…,
//   schedule_steps, (step_len, node…)…,
//   adversary_steps, (pair_count, (node, label_len, label_idx…)…)…
// KIND_RESUME_POINTER payload: epoch, dir_len, dir_words…
// ---------------------------------------------------------------------------

/// The fingerprint key of a serialized entry, `None` when the record is
/// too short or version-skewed (the load path skips such entries).
fn entry_key(words: &[u64]) -> Option<u64> {
    if words.len() >= 3 && words[0] == ENTRY_VERSION {
        Some(words[1])
    } else {
        None
    }
}

fn push_str(words: &mut Vec<u64>, s: &str) {
    let bytes = s.as_bytes();
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(word));
    }
}

fn encode_header(fp: u64, kind: u64, stats: ExploreStats, provenance: &Provenance) -> Vec<u64> {
    let mut words = vec![
        ENTRY_VERSION,
        fp,
        kind,
        stats.states as u64,
        stats.edges as u64,
        stats.words_per_state as u64,
        stats.state_bytes as u64,
        stats.edge_bytes as u64,
        provenance.wall_secs.to_bits(),
        provenance.threads as u64,
        match provenance.scc {
            SccBackend::ForwardBackward => 0,
            SccBackend::Tarjan => 1,
        },
        match provenance.symmetry {
            SymmetryMode::Off => 0,
            SymmetryMode::Auto => 1,
        },
        provenance.max_states as u64,
        provenance.max_edges as u64,
    ];
    push_str(&mut words, &provenance.commit);
    words
}

fn encode_final<L: Label>(
    fp: u64,
    verdict: &Verdict<L>,
    stats: ExploreStats,
    provenance: &Provenance,
    dedup: &[L],
) -> Option<Vec<u64>> {
    let index_of = |l: &L| dedup.iter().position(|d| d == l).map(|i| i as u64);
    match verdict {
        Verdict::Stabilizing => Some(encode_header(fp, KIND_STABILIZING, stats, provenance)),
        Verdict::NotStabilizing(w) => {
            let mut words = encode_header(fp, KIND_NOT_STABILIZING, stats, provenance);
            words.push(w.labeling.len() as u64);
            for l in &w.labeling {
                words.push(index_of(l)?);
            }
            words.push(w.schedule.len() as u64);
            for step in &w.schedule {
                words.push(step.len() as u64);
                words.extend(step.iter().map(|&id| id as u64));
            }
            words.push(w.adversary.len() as u64);
            for step in &w.adversary {
                words.push(step.len() as u64);
                for (node, labels) in step {
                    words.push(*node as u64);
                    words.push(labels.len() as u64);
                    for l in labels {
                        words.push(index_of(l)?);
                    }
                }
            }
            Some(words)
        }
        Verdict::Partial { .. } => None,
    }
}

fn encode_pointer(
    fp: u64,
    stats: ExploreStats,
    provenance: &Provenance,
    handle: &CheckpointHandle,
) -> Vec<u64> {
    let mut words = encode_header(fp, KIND_RESUME_POINTER, stats, provenance);
    words.push(handle.epoch);
    push_str(&mut words, &handle.dir.to_string_lossy());
    words
}

/// A decoded entry: either a servable final verdict or a resume
/// pointer.
enum Decoded<L> {
    Final {
        verdict: Verdict<L>,
        stats: ExploreStats,
        provenance: Provenance,
    },
    Pointer {
        handle: CheckpointHandle,
    },
}

/// Cursor-based decoding over the word vector; any inconsistency —
/// short record, bad discriminant, label index past the alphabet —
/// returns `None` and the caller drops the entry (recompute, never a
/// wrong or garbled answer).
struct Cursor<'a> {
    words: &'a [u64],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self) -> Option<u64> {
        let v = self.words.get(self.at).copied()?;
        self.at += 1;
        Some(v)
    }

    fn take_len(&mut self) -> Option<usize> {
        // An absurd length word (from a colliding or corrupt record)
        // must not drive allocation: entries are bounded by the segment
        // size, so any legitimate count fits the remaining words (at
        // most 8 payload bytes per remaining word for strings).
        let len = self.take()? as usize;
        (len <= (self.words.len() - self.at) * 8).then_some(len)
    }

    fn take_str(&mut self) -> Option<String> {
        let len = self.take_len()?;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len.div_ceil(8) {
            bytes.extend_from_slice(&self.take()?.to_le_bytes());
        }
        bytes.truncate(len);
        String::from_utf8(bytes).ok()
    }
}

fn decode_entry<L: Label>(words: &[u64], dedup: &[L]) -> Option<Decoded<L>> {
    let mut c = Cursor { words, at: 0 };
    if c.take()? != ENTRY_VERSION {
        return None;
    }
    let _fp = c.take()?;
    let kind = c.take()?;
    let stats = ExploreStats {
        states: c.take()? as usize,
        edges: c.take()? as usize,
        words_per_state: c.take()? as usize,
        state_bytes: c.take()? as usize,
        edge_bytes: c.take()? as usize,
    };
    let wall_secs = f64::from_bits(c.take()?);
    let threads = c.take()? as usize;
    let scc = match c.take()? {
        0 => SccBackend::ForwardBackward,
        1 => SccBackend::Tarjan,
        _ => return None,
    };
    let symmetry = match c.take()? {
        0 => SymmetryMode::Off,
        1 => SymmetryMode::Auto,
        _ => return None,
    };
    let provenance = Provenance {
        max_states: c.take()? as usize,
        max_edges: c.take()? as usize,
        commit: c.take_str()?,
        wall_secs,
        threads,
        scc,
        symmetry,
    };
    let label_at = |idx: u64| dedup.get(idx as usize).cloned();
    match kind {
        KIND_STABILIZING => Some(Decoded::Final {
            verdict: Verdict::Stabilizing,
            stats,
            provenance,
        }),
        KIND_NOT_STABILIZING => {
            let mut labeling = Vec::with_capacity(c.take_len()?);
            for _ in 0..labeling.capacity() {
                labeling.push(label_at(c.take()?)?);
            }
            let steps = c.take_len()?;
            let mut schedule = Vec::with_capacity(steps);
            for _ in 0..steps {
                let len = c.take_len()?;
                let mut step = Vec::with_capacity(len);
                for _ in 0..len {
                    step.push(c.take()? as NodeId);
                }
                schedule.push(step);
            }
            let steps = c.take_len()?;
            let mut adversary = Vec::with_capacity(steps);
            for _ in 0..steps {
                let pairs = c.take_len()?;
                let mut step = Vec::with_capacity(pairs);
                for _ in 0..pairs {
                    let node = c.take()? as NodeId;
                    let len = c.take_len()?;
                    let mut labels = Vec::with_capacity(len);
                    for _ in 0..len {
                        labels.push(label_at(c.take()?)?);
                    }
                    step.push((node, labels));
                }
                adversary.push(step);
            }
            Some(Decoded::Final {
                verdict: Verdict::NotStabilizing(CycleWitness {
                    labeling,
                    schedule,
                    adversary,
                }),
                stats,
                provenance,
            })
        }
        KIND_RESUME_POINTER => {
            let epoch = c.take()?;
            let dir = PathBuf::from(c.take_str()?);
            Some(Decoded::Pointer {
                handle: CheckpointHandle { dir, epoch },
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> ExploreStats {
        ExploreStats {
            states: 6561,
            edges: 98415,
            words_per_state: 2,
            state_bytes: 104_976,
            edge_bytes: 4096,
        }
    }

    fn sample_provenance() -> Provenance {
        Provenance {
            commit: "abc123def".into(),
            wall_secs: 0.125,
            threads: 4,
            scc: SccBackend::Tarjan,
            symmetry: SymmetryMode::Auto,
            max_states: 1_000_000,
            max_edges: 1 << 30,
        }
    }

    #[test]
    fn witness_entries_round_trip_bit_identically() {
        let alphabet = vec![10u64, 20, 30];
        let verdict: Verdict<u64> = Verdict::NotStabilizing(CycleWitness {
            labeling: vec![30, 10, 10, 20],
            schedule: vec![vec![0, 2], vec![1]],
            adversary: vec![vec![(2, vec![20, 20])], vec![]],
        });
        let words = encode_final(
            0xfeed,
            &verdict,
            sample_stats(),
            &sample_provenance(),
            &alphabet,
        )
        .unwrap();
        assert_eq!(entry_key(&words), Some(0xfeed));
        match decode_entry::<u64>(&words, &alphabet).unwrap() {
            Decoded::Final {
                verdict: got,
                stats,
                provenance,
            } => {
                assert_eq!(got, verdict);
                assert_eq!(stats, sample_stats());
                assert_eq!(provenance, sample_provenance());
            }
            Decoded::Pointer { .. } => panic!("decoded a pointer from a final entry"),
        }
    }

    #[test]
    fn pointer_entries_round_trip() {
        let handle = CheckpointHandle {
            dir: PathBuf::from("/tmp/some dir/with spaces"),
            epoch: 17,
        };
        let words = encode_pointer(0xbead, sample_stats(), &sample_provenance(), &handle);
        match decode_entry::<bool>(&words, &[false, true]).unwrap() {
            Decoded::Pointer { handle: got } => assert_eq!(got, handle),
            Decoded::Final { .. } => panic!("decoded a final from a pointer entry"),
        }
    }

    #[test]
    fn malformed_entries_decode_to_none() {
        let alphabet = vec![false, true];
        let verdict: Verdict<bool> = Verdict::NotStabilizing(CycleWitness {
            labeling: vec![true, false],
            schedule: vec![vec![0]],
            adversary: vec![vec![]],
        });
        let words =
            encode_final(1, &verdict, sample_stats(), &sample_provenance(), &alphabet).unwrap();
        // Truncations at every prefix length must fail cleanly.
        for cut in 0..words.len() {
            assert!(
                decode_entry::<bool>(&words[..cut], &alphabet).is_none(),
                "prefix of {cut} words decoded"
            );
        }
        // A label index past the alphabet is rejected, not wrapped.
        // Header layout: 14 fixed words + commit string (len word +
        // ceil(9/8) = 2 payload words), so the labeling length sits at
        // word 17 and the first label index at word 18.
        let mut bad = words.clone();
        assert_eq!(bad[17], 2, "labeling length where expected");
        bad[18] = 99;
        assert!(decode_entry::<bool>(&bad, &alphabet).is_none());
        // Version skew is rejected up front (and skipped at load).
        let mut skewed = words;
        skewed[0] = ENTRY_VERSION + 1;
        assert!(decode_entry::<bool>(&skewed, &alphabet).is_none());
        assert_eq!(entry_key(&skewed), None);
    }

    #[test]
    fn strings_round_trip_at_every_chunk_boundary() {
        for len in 0..=17 {
            let s: String = "abcdefghijklmnopq".chars().take(len).collect();
            let mut words = Vec::new();
            push_str(&mut words, &s);
            let mut c = Cursor {
                words: &words,
                at: 0,
            };
            assert_eq!(c.take_str().as_deref(), Some(s.as_str()), "len {len}");
            assert_eq!(c.at, words.len(), "len {len} consumed exactly");
        }
    }
}
