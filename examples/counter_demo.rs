//! Claims 5.5/5.6, live: a stateless mod-D clock that synchronizes itself
//! out of garbage.
//!
//! ```sh
//! cargo run --example counter_demo
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::core::prelude::*;
use stateless_computation::protocols::counter::{
    counter_protocol, sync_rounds_bound, CounterFields,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d) = (9usize, 12u32);
    let protocol = counter_protocol(n, d)?;
    println!("D-counter on the odd bidirectional {n}-ring, D = {d}.");
    println!("Nodes have NO memory: the clock lives entirely in the circulating labels.\n");

    let mut rng = StdRng::seed_from_u64(99);
    let garbage: Vec<CounterFields> = (0..protocol.edge_count())
        .map(|_| CounterFields {
            b1: rng.random_bool(0.5),
            b2: rng.random_bool(0.5),
            z: rng.random_range(0..4 * d),
            g: rng.random_range(0..4 * d),
        })
        .collect();
    let mut sim = Simulation::new(&protocol, &vec![0; n], garbage)?;

    for phase in 0..2 {
        for _ in 0..6 {
            sim.run(&mut Synchronous, 1);
            println!("t={:<3} per-node counts: {:?}", sim.time(), sim.outputs());
        }
        if phase == 0 {
            let skip = sync_rounds_bound(n) - 6;
            sim.run(&mut Synchronous, skip);
            println!("… {skip} rounds later (past the 4n+8 bound) …");
        }
    }
    let outs = sim.outputs();
    assert!(outs.iter().all(|&c| c == outs[0]), "synchronized");
    println!("\n✓ every node reads the same clock, ticking mod {d}");
    Ok(())
}
