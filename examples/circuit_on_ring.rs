//! Theorem 5.4, live: compile a majority circuit onto a bidirectional
//! ring and watch it self-stabilize from a scrambled initial labeling.
//!
//! ```sh
//! cargo run --release --example circuit_on_ring
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::circuits::library;
use stateless_computation::core::prelude::*;
use stateless_computation::protocols::circuit_ring::{compile_circuit, CircuitLabel};
use stateless_computation::protocols::counter::CounterFields;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::majority(5);
    let compiled = compile_circuit(&circuit)?;
    println!(
        "majority(5): {} gates → ring of {} nodes, clock modulus D = {}, {} label bits",
        circuit.size(),
        compiled.ring_size(),
        compiled.modulus(),
        compiled.protocol().label_bits()
    );

    let x = [true, false, true, true, false]; // 3 of 5 → majority = 1
    let mut rng = StdRng::seed_from_u64(2024);
    let scrambled: Vec<CircuitLabel> = (0..compiled.protocol().edge_count())
        .map(|_| CircuitLabel {
            ctr: CounterFields {
                b1: rng.random_bool(0.5),
                b2: rng.random_bool(0.5),
                z: rng.random_range(0..compiled.modulus()),
                g: rng.random_range(0..compiled.modulus()),
            },
            i1: rng.random_bool(0.5),
            i2: rng.random_bool(0.5),
            v: rng.random_bool(0.5),
            o: rng.random_bool(0.5),
        })
        .collect();

    let mut sim = Simulation::new(compiled.protocol(), &compiled.ring_inputs(&x), scrambled)?;
    println!(
        "\nrunning {} rounds from a fully scrambled labeling …",
        compiled.rounds_bound()
    );
    sim.run(&mut Synchronous, compiled.rounds_bound());
    let outs = sim.outputs();
    println!("all {} nodes output: {}", outs.len(), outs[0]);
    assert!(
        outs.iter().all(|&y| y == 1),
        "majority(1,0,1,1,0) = 1 everywhere"
    );
    println!("✓ matches circuit.eval = {}", circuit.eval(&x)?);
    Ok(())
}
