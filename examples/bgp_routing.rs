//! BGP as stateless computation: the stable-paths gadgets.
//!
//! ```sh
//! cargo run --example bgp_routing
//! ```

use stateless_computation::core::convergence::{classify_sync, SyncOutcome};
use stateless_computation::core::prelude::*;
use stateless_computation::games::bgp;

fn show(name: &str, spp: &bgp::SppInstance) {
    let protocol = spp.to_protocol();
    let n = spp.node_count();
    let direct: Vec<bgp::Route> = (0..n as u8)
        .map(|i| if i == 0 { vec![0] } else { vec![i, 0] })
        .collect();
    let init = spp.labeling_from(&direct);
    match classify_sync(&protocol, &vec![0; n], init.clone(), 1_000_000).unwrap() {
        SyncOutcome::LabelStable { round, .. } => {
            println!("{name:<10} converges in {round} rounds (simultaneous updates)");
        }
        SyncOutcome::Oscillating { period, .. } => {
            println!("{name:<10} OSCILLATES with period {period} — the classic route flap");
        }
    }
    // Sequential (one router at a time) updates.
    let mut sim = Simulation::new(&protocol, &vec![0; n], init).unwrap();
    let mut sched = RoundRobin::new(1);
    match sim.run_until_label_stable(&mut sched, 1000) {
        Ok(steps) => println!(
            "{:<10} sequential updates settle after {steps} activations",
            ""
        ),
        Err(_) => println!("{:<10} even sequential updates never settle", ""),
    }
}

fn main() {
    println!("Stable Paths gadgets (Griffin–Shepherd–Wilfong), run as stateless protocols:\n");
    show("GOOD", &bgp::good_gadget());
    show("DISAGREE", &bgp::disagree_gadget());
    show("BAD", &bgp::bad_gadget());
    println!("\nDISAGREE has two stable trees: by Theorem 3.1 no (n−1)-fair schedule");
    println!("guarantee exists — which is why BGP route flapping is inherent, not a bug.");
}
