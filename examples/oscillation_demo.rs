//! Example 1 of the paper, live: two stable labelings make a protocol
//! breakable by an (n−1)-fair adversary (Theorem 3.1), but any fairer
//! schedule converges.
//!
//! ```sh
//! cargo run --example oscillation_demo
//! ```

use stateless_computation::core::prelude::*;
use stateless_computation::protocols::example1::{
    example1_protocol, hot_node_labeling, oscillation_schedule,
};
use stateless_computation::verify::{verify_label_stabilization, Limits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    let protocol = example1_protocol(n);
    println!("Example 1 on K{n}: send 1s unless every incoming edge is 0.");
    println!("Stable labelings: all-0 and all-1 (two of them!).\n");

    // The adversary: activate pairs {t, t+1} cyclically — exactly
    // (n−1)-fair — starting with one "hot" node.
    let mut sim = Simulation::new(&protocol, &vec![0; n], hot_node_labeling(n, 0))?;
    let mut sched = FairnessMonitor::new(oscillation_schedule(n));
    let mut active = Vec::new();
    for t in 0..3 * n {
        sched.activations_into(sim.time() + 1, n, &mut active);
        sim.step_with(&active);
        let hot: Vec<usize> = (0..n)
            .filter(|&i| {
                protocol
                    .graph()
                    .out_edges(i)
                    .iter()
                    .any(|&e| sim.labeling()[e])
            })
            .collect();
        println!(
            "t={:<3} activated {:?}  hot node(s): {:?}",
            t + 1,
            active,
            hot
        );
    }
    println!(
        "\n→ the hot token circulates forever; worst activation gap = {}",
        sched.worst_gap()
    );

    // The loop above *suggests* an oscillation; cycle detection in the
    // (labeling, schedule-phase) product *proves* it, with the exact period.
    let verdict = classify_scheduled(
        &protocol,
        &vec![0; n],
        hot_node_labeling(n, 0),
        &oscillation_schedule(n),
        10_000,
        CycleDetector::ExactArena,
    )?;
    match verdict {
        SyncOutcome::Oscillating { period, .. } => {
            println!("classify_scheduled: proven oscillation, product period {period}")
        }
        SyncOutcome::LabelStable { .. } => unreachable!("Example 1 oscillates"),
    }

    // Exact verification for a small instance: r = n−2 converges,
    // r = n−1 does not.
    let small = example1_protocol(3);
    for r in [1u8, 2] {
        let verdict =
            verify_label_stabilization(&small, &[0; 3], &[false, true], r, Limits::default())?;
        println!(
            "K3, r = {r}: {}",
            if verdict.is_stabilizing() {
                "label r-stabilizing"
            } else {
                "oscillation exists"
            }
        );
    }
    Ok(())
}
