//! Quickstart: define a stateless protocol, run it, watch it stabilize.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use stateless_computation::core::prelude::*;
use stateless_computation::core::trace::Trace;

fn main() -> Result<(), CoreError> {
    // A "maximum finding" protocol on the unidirectional 6-ring: each node
    // forwards the largest value it has seen; outputs converge to the
    // global maximum — a textbook self-stabilizing computation.
    let n = 6;
    let graph = topology::unidirectional_ring(n);
    let protocol = Protocol::builder(graph, 8.0)
        .name("max-on-ring")
        .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
            let best = incoming[0].max(input);
            (vec![best], best)
        }))
        .build()?;

    let inputs = [3, 14, 1, 5, 9, 2];
    let mut sim = Simulation::new(&protocol, &inputs, vec![0; n])?;
    println!("inputs: {inputs:?}\n");
    let trace = Trace::record(&mut sim, &mut Synchronous, 8);
    print!("{trace}");
    assert!(sim.is_label_stable());
    println!("\nconverged: every node outputs {}", sim.outputs()[0]);

    // The same protocol also survives an adversarial-ish schedule.
    let mut sim = Simulation::new(&protocol, &inputs, vec![0; n])?;
    let mut sched = RoundRobin::new(1);
    let steps = sim.run_until_label_stable(&mut sched, 10_000)?;
    println!("round-robin (one node per step) stabilized after {steps} activations");
    Ok(())
}
