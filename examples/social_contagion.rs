//! Diffusion of technologies (Morris contagion) as stateless dynamics.
//!
//! ```sh
//! cargo run --example social_contagion
//! ```

use stateless_computation::core::convergence::{classify_sync, SyncOutcome};
use stateless_computation::core::prelude::*;
use stateless_computation::games::contagion::{contagion_protocol, seeded_labeling};

fn spread(n: usize, num: usize, den: usize, seeds: &[usize]) {
    let graph = topology::bidirectional_ring(n);
    let protocol = contagion_protocol(graph.clone(), num, den);
    let init = seeded_labeling(&graph, seeds);
    match classify_sync(&protocol, &vec![0; n], init, 1_000_000).unwrap() {
        SyncOutcome::LabelStable { round, outputs, .. } => {
            let adopters = outputs.iter().filter(|&&y| y == 1).count();
            println!(
                "ring({n}), threshold {num}/{den}, seeds {seeds:?}: settles in {round} rounds → {adopters}/{n} adopt"
            );
        }
        SyncOutcome::Oscillating { period, .. } => {
            println!(
                "ring({n}), threshold {num}/{den}, seeds {seeds:?}: oscillates (period {period})"
            );
        }
    }
}

fn main() {
    println!("Adopt iff at least q of your neighbors adopted — a best response.\n");
    spread(11, 1, 2, &[5]); // low threshold: one adopter converts the ring
    spread(11, 2, 2, &[5]); // unanimity: a lone adopter gives up
    spread(11, 2, 2, &[4, 5, 6]); // a block with unanimous interiors … still capped
    spread(12, 1, 2, &[0, 6]); // two seeds racing around the ring
    println!("\nBoth all-adopt and none-adopt are stable labelings, so by Theorem 3.1");
    println!("no contagion process of this kind can be (n−1)-fair convergent.");
}
